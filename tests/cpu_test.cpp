// Out-of-order core model: predictors, TLB, pipeline throughput,
// dependencies, memory path, store buffer and mispredict handling.
#include "src/common/rng.h"
#include "src/cpu/branch_predictor.h"
#include "src/cpu/ooo_core.h"
#include "src/cpu/tlb.h"
#include "src/sim/engine.h"

#include <gtest/gtest.h>

namespace lnuca::cpu {
namespace {

TEST(predictors, bimodal_learns_bias)
{
    bimodal_predictor p(1024);
    const addr_t pc = 0x400100;
    for (int i = 0; i < 8; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 8; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(predictors, gshare_learns_alternation)
{
    gshare_predictor p(10);
    const addr_t pc = 0x400200;
    // Alternating pattern is history-predictable.
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        if (i > 200)
            correct += p.predict(pc) == taken ? 1 : 0;
        p.update(pc, taken);
    }
    EXPECT_GT(correct, 180); // near-perfect after warm-up
}

TEST(predictors, combined_beats_components_on_mixed_behaviour)
{
    combined_predictor combined;
    bimodal_predictor bimodal;
    const addr_t biased = 0x400300, alternating = 0x400304;
    int combined_ok = 0, bimodal_ok = 0, total = 0;
    bool alt = false;
    for (int i = 0; i < 2000; ++i) {
        alt = !alt;
        const bool t1 = true; // fully biased site keeps global history clean
        const bool c1 = combined.predict(biased);
        combined.update(biased, t1);
        const bool c2 = combined.predict(alternating);
        combined.update(alternating, alt);
        const bool b1 = bimodal.predict(biased);
        bimodal.update(biased, t1);
        const bool b2 = bimodal.predict(alternating);
        bimodal.update(alternating, alt);
        if (i > 1000) {
            total += 2;
            combined_ok += (c1 == t1) + (c2 == alt);
            bimodal_ok += (b1 == t1) + (b2 == alt);
        }
    }
    EXPECT_GT(combined_ok, bimodal_ok);
    EXPECT_GT(double(combined_ok) / total, 0.9);
}

TEST(tlb, hits_after_fill_and_lru_eviction)
{
    tlb t(2, 8192);
    EXPECT_FALSE(t.access(0x0));     // miss, fill
    EXPECT_TRUE(t.access(0x100));    // same page
    EXPECT_FALSE(t.access(0x4000));  // second page
    EXPECT_TRUE(t.access(0x0));      // still resident
    EXPECT_FALSE(t.access(0x8000));  // evicts LRU (0x4000's page)
    EXPECT_FALSE(t.access(0x4000));
    EXPECT_EQ(t.misses(), 4u);
    EXPECT_EQ(t.hits(), 2u);
}

// ---- Core harness --------------------------------------------------------

/// Scripted instruction stream cycling over a fixed pattern.
struct pattern_stream final : instruction_stream {
    std::vector<instruction> pattern;
    std::size_t next_index = 0;

    instruction next() override
    {
        instruction i = pattern[next_index];
        next_index = (next_index + 1) % pattern.size();
        return i;
    }
};

/// Instant L1: every access hits with a fixed latency.
struct instant_cache final : sim::ticked, mem::mem_port {
    explicit instant_cache(cycle_t latency) : latency_(latency) {}
    bool can_accept(const mem::mem_request&) const override { return true; }
    void accept(const mem::mem_request& r) override
    {
        ++accepted;
        if (r.needs_response)
            pending_.push(r.created_at + latency_ - 1, r);
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending_.pop_ready(now)) {
            mem::mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::l1;
            if (client)
                client->respond(resp);
        }
    }
    cycle_t latency_;
    int accepted = 0;
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem::mem_request> pending_;
};

struct core_harness {
    double run_ipc(pattern_stream& stream, std::uint64_t instructions,
                   cycle_t l1_latency = 2)
    {
        core = std::make_unique<ooo_core>(config, stream, ids);
        dcache = std::make_unique<instant_cache>(l1_latency);
        core->set_dcache(dcache.get());
        dcache->client = core.get();
        engine.add(*core);
        engine.add(*dcache);
        core->set_instruction_limit(instructions);
        engine.run_until([&] { return core->done(); },
                         400 * instructions + 10000);
        EXPECT_TRUE(core->done());
        return core->ipc();
    }

    core_config config;
    mem::txn_id_source ids;
    std::unique_ptr<ooo_core> core;
    std::unique_ptr<instant_cache> dcache;
    sim::engine engine;
};

struct core_fixture : ::testing::Test, core_harness {};

instruction alu(std::uint32_t dep = 0)
{
    instruction i;
    i.op = op_class::int_alu;
    i.dep[0] = dep;
    return i;
}

TEST_F(core_fixture, independent_alus_reach_issue_width)
{
    pattern_stream s;
    s.pattern = {alu(), alu(), alu(), alu()};
    const double ipc = run_ipc(s, 20000);
    // 4-wide INT issue and no dependences: IPC close to 4.
    EXPECT_GT(ipc, 3.4);
}

TEST_F(core_fixture, dependency_chain_serialises)
{
    pattern_stream s;
    s.pattern = {alu(1)}; // every op depends on the previous one
    const double ipc = run_ipc(s, 20000);
    EXPECT_NEAR(ipc, 1.0, 0.1);
}

TEST_F(core_fixture, fp_and_int_issue_in_parallel)
{
    pattern_stream s;
    instruction fp;
    fp.op = op_class::fp_add;
    s.pattern = {alu(), alu(), fp, fp};
    const double ipc_mixed = run_ipc(s, 20000);
    EXPECT_GT(ipc_mixed, 3.4); // 2 INT + 2 FP per cycle fits 4+4 widths
}

TEST_F(core_fixture, fp_div_latency_bounds_throughput)
{
    pattern_stream s;
    instruction divi;
    divi.op = op_class::fp_div;
    divi.dep[0] = 1; // serial divides
    s.pattern = {divi};
    const double ipc = run_ipc(s, 3000);
    EXPECT_LT(ipc, 1.0 / (config.lat_fp_div - 2));
}

TEST_F(core_fixture, load_latency_gates_dependents)
{
    pattern_stream s;
    instruction ld;
    ld.op = op_class::load;
    ld.addr = 0x1000;
    ld.size = 8;
    instruction chained_ld = ld;
    chained_ld.dep[0] = 2; // each load's address comes from the previous one
    s.pattern = {chained_ld, alu(1)};
    const double ipc_fast = run_ipc(s, 10000, 2);

    pattern_stream s2;
    s2.pattern = s.pattern;
    core_harness other;
    pattern_stream s3;
    s3.pattern = s.pattern;
    const double ipc_slow = other.run_ipc(s3, 10000, 12);
    EXPECT_GT(ipc_fast, ipc_slow * 1.5);
}

TEST_F(core_fixture, stores_drain_through_store_buffer)
{
    pattern_stream s;
    instruction st;
    st.op = op_class::store;
    st.addr = 0x2000;
    st.size = 8;
    s.pattern = {st, alu(), alu(), alu()};
    run_ipc(s, 8000);
    EXPECT_EQ(core->counters().get("stores_issued"),
              core->counters().get("stores"));
}

TEST_F(core_fixture, store_forwarding_serves_loads_locally)
{
    pattern_stream s;
    instruction st;
    st.op = op_class::store;
    st.addr = 0x3000;
    st.size = 8;
    instruction ld;
    ld.op = op_class::load;
    ld.addr = 0x3000;
    ld.size = 8;
    s.pattern = {st, ld, alu(), alu()};
    run_ipc(s, 8000);
    EXPECT_GT(core->counters().get("store_forwards"), 0u);
}

TEST_F(core_fixture, mispredicts_cost_throughput)
{
    pattern_stream predictable;
    instruction br;
    br.op = op_class::branch;
    br.pc = 0x400400;
    br.taken = true; // always taken: learned quickly
    predictable.pattern = {alu(), alu(), alu(), br};
    const double ipc_good = run_ipc(predictable, 20000);

    core_harness other;
    // Genuinely random outcomes defeat any predictor.
    struct random_branch_stream final : instruction_stream {
        rng random{17};
        int phase = 0;
        instruction next() override
        {
            if (phase++ % 4 != 3)
                return alu();
            instruction br;
            br.op = op_class::branch;
            br.pc = 0x400400;
            br.taken = random.chance(0.5);
            return br;
        }
    } random_branches;
    other.core = std::make_unique<ooo_core>(other.config, random_branches,
                                            other.ids);
    other.dcache = std::make_unique<instant_cache>(2);
    other.core->set_dcache(other.dcache.get());
    other.dcache->client = other.core.get();
    other.engine.add(*other.core);
    other.engine.add(*other.dcache);
    other.core->set_instruction_limit(20000);
    other.engine.run_until([&] { return other.core->done(); }, 2'000'000);
    const double ipc_bad = other.core->ipc();
    EXPECT_GT(ipc_good, ipc_bad * 1.3);
    EXPECT_GT(other.core->counters().get("branch_mispredicts"), 1000u);
}

TEST_F(core_fixture, tlb_misses_are_counted_and_penalised)
{
    pattern_stream s;
    instruction ld;
    ld.op = op_class::load;
    ld.size = 8;
    s.pattern.clear();
    // Loads striding over many pages blow the 64-entry TLB.
    for (int i = 0; i < 128; ++i) {
        instruction x = ld;
        x.addr = addr_t(i) * 8192 * 3;
        s.pattern.push_back(x);
    }
    run_ipc(s, 20000);
    EXPECT_GT(core->counters().get("dtlb_misses"), 100u);
}

TEST_F(core_fixture, rob_wraps_correctly_over_long_runs)
{
    pattern_stream s;
    s.pattern = {alu(), alu(3), alu(1), alu(2)};
    const double ipc = run_ipc(s, 50000);
    EXPECT_EQ(core->committed(), 50000u);
    EXPECT_GT(ipc, 0.5);
}

TEST_F(core_fixture, reset_stats_clears_counts)
{
    pattern_stream s;
    s.pattern = {alu()};
    run_ipc(s, 5000);
    core->reset_stats();
    EXPECT_EQ(core->committed(), 0u);
    EXPECT_EQ(core->cycles(), 0u);
    EXPECT_EQ(core->counters().get("loads"), 0u);
}

TEST_F(core_fixture, loads_served_accounting)
{
    pattern_stream s;
    instruction ld;
    ld.op = op_class::load;
    ld.addr = 0x9000;
    ld.size = 8;
    s.pattern = {ld, alu(), alu(), alu()};
    run_ipc(s, 8000);
    EXPECT_GT(core->loads_served_by(mem::service_level::l1), 0u);
}

} // namespace
} // namespace lnuca::cpu
