// Experiment-runner subsystem: determinism of the work-stealing pool,
// shard partition/union correctness, seed-lane derivation, and the
// JSON-lines sink round-trip.
#include "src/exp/pool.h"
#include "src/exp/run_app.h"
#include "src/exp/runner.h"
#include "src/exp/sink.h"
#include "src/exp/sweep.h"
#include "src/hier/presets.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>

namespace lnuca::exp {
namespace {

// Bitwise equality of two run_results: the determinism contract says the
// thread count and shard layout must not change a single field. The host
// wall-clock/throughput fields are deliberately absent from the shared
// comparator: they measure the host, not the simulation (the jsonl
// round-trip test covers their serialisation instead).
void expect_identical(const hier::run_result& a, const hier::run_result& b)
{
    expect_sim_fields_identical(a, b);
}

sweep small_sweep()
{
    sweep s;
    s.add_config(hier::presets::l2_256kb())
        .add_config(hier::presets::lnuca_l3(2))
        .add_config(hier::presets::lnuca_l3(3))
        .add_workload(*wl::find_spec2006("456.hmmer"))
        .add_workload(*wl::find_spec2006("401.bzip2"))
        .add_workload(*wl::find_spec2006("429.mcf"))
        .add_workload(*wl::find_spec2006("470.lbm"))
        .instructions(3000)
        .warmup(500)
        .base_seed(17);
    return s;
}

// --------------------------------------------------------------------------
// Pool basics.
// --------------------------------------------------------------------------

TEST(pool, parallel_for_covers_every_index_once)
{
    pool p(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits)
        h = 0;
    p.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(pool, submit_from_inside_a_task)
{
    pool p(2);
    std::atomic<int> ran{0};
    p.submit([&] {
        ++ran;
        p.submit([&] { ++ran; });
    });
    p.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(pool, thread_count_defaults_to_hardware)
{
    pool p;
    EXPECT_GE(p.thread_count(), 1u);
}

// --------------------------------------------------------------------------
// Seed lanes.
// --------------------------------------------------------------------------

TEST(seeding, split_lanes_are_distinct_across_a_grid)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 1; base <= 4; ++base)
        for (std::uint64_t a = 0; a < 4; ++a)
            for (std::uint64_t b = 0; b < 4; ++b)
                for (std::uint64_t c = 0; c < 4; ++c)
                    seen.insert(rng::split(base, a, b, c));
    EXPECT_EQ(seen.size(), 4u * 4u * 4u * 4u);
}

TEST(seeding, split_coordinates_do_not_alias_positions)
{
    EXPECT_NE(rng::split(1, 1, 0), rng::split(1, 0, 1));
    EXPECT_NE(rng::split(1, 1, 0, 0), rng::split(1, 0, 0, 1));
    // The additive scheme's guaranteed collision must not exist here.
    EXPECT_NE(rng::split(5, 1, 0, 0), rng::split(6, 0, 0, 0));
}

TEST(seeding, sweep_jobs_use_split_lanes)
{
    const auto jobs = small_sweep().build();
    ASSERT_EQ(jobs.size(), 12u);
    std::set<std::uint64_t> seeds;
    for (const auto& j : jobs) {
        EXPECT_EQ(j.seed,
                  rng::split(17, j.key.config, j.key.workload, j.key.replicate));
        seeds.insert(j.seed);
    }
    EXPECT_EQ(seeds.size(), jobs.size()) << "job seed collision";
}

// --------------------------------------------------------------------------
// Determinism: a multi-threaded sweep is bit-identical to the serial path.
// --------------------------------------------------------------------------

TEST(runner, parallel_sweep_bit_identical_to_serial)
{
    const sweep s = small_sweep();
    const report serial = run_sweep(s, {1});
    const report parallel = run_sweep(s, {8});
    ASSERT_EQ(serial.jobs.size(), 12u);
    ASSERT_EQ(parallel.jobs.size(), 12u);
    // Harness health: a non-fault sweep never leaks a stuck worker.
    EXPECT_EQ(serial.abandoned_workers, 0u);
    EXPECT_EQ(parallel.abandoned_workers, 0u);
    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        EXPECT_TRUE(serial.jobs[i].key == parallel.jobs[i].key);
        expect_identical(serial.results[i], parallel.results[i]);
    }
}

// --------------------------------------------------------------------------
// Shard filters: partition, union, and per-shard determinism.
// --------------------------------------------------------------------------

TEST(sharding, shards_partition_the_sweep)
{
    sweep s = small_sweep();
    const std::size_t total = s.total_jobs();
    const std::size_t shards = 3;

    std::set<std::size_t> seen;
    std::size_t count = 0;
    for (std::size_t i = 0; i < shards; ++i) {
        s.shard(i, shards);
        for (const auto& j : s.build()) {
            EXPECT_EQ(j.key.flat % shards, i);
            EXPECT_TRUE(seen.insert(j.key.flat).second)
                << "job " << j.key.flat << " appears in two shards";
            ++count;
        }
    }
    EXPECT_EQ(count, total);
    EXPECT_EQ(seen.size(), total);
    EXPECT_EQ(*seen.rbegin(), total - 1);
}

TEST(sharding, sharded_results_match_the_full_run)
{
    sweep full;
    full.add_config(hier::presets::l2_256kb())
        .add_config(hier::presets::lnuca_l3(2))
        .add_workload(*wl::find_spec2006("456.hmmer"))
        .add_workload(*wl::find_spec2006("401.bzip2"))
        .instructions(2500)
        .warmup(400)
        .base_seed(5);
    const report whole = run_sweep(full, {2});

    std::size_t matched = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        sweep part = full;
        part.shard(i, 2);
        const report rep = run_sweep(part, {2});
        for (std::size_t k = 0; k < rep.jobs.size(); ++k) {
            const job_key& key = rep.jobs[k].key;
            const hier::run_result* full_result =
                whole.find(key.config, key.workload, key.replicate);
            ASSERT_NE(full_result, nullptr);
            expect_identical(rep.results[k], *full_result);
            ++matched;
        }
    }
    EXPECT_EQ(matched, full.total_jobs());
}

// --------------------------------------------------------------------------
// Sinks.
// --------------------------------------------------------------------------

hier::run_result synthetic_result()
{
    hier::run_result r;
    r.config_name = "LN3, \"quoted\", with, commas";
    r.workload_name = "429.mcf";
    r.floating_point = true;
    r.instructions = 123456789;
    r.cycles = 987654321;
    r.ipc = 0.12499999999999997; // needs all 17 significant digits
    r.l2_read_hits = 42;
    r.fabric_read_hits = {0, 0, 777, 31};
    r.transport_actual = 1003;
    r.transport_min = 991;
    r.search_restarts = 3;
    r.searches = 1000;
    r.energy.dynamic_j = 1.2345678901234567e-3;
    r.energy.static_l1_j = 9.87e-5;
    r.energy.static_storage_j = 3.3e-4;
    r.energy.static_l3_j = 7.1e-2;
    r.loads_l1 = 11;
    r.loads_fabric = 22;
    r.loads_l2 = 33;
    r.loads_l3 = 44;
    r.loads_dnuca = 55;
    r.loads_memory = 66;
    r.avg_load_latency = 7.0999999999999996;
    r.sampled = true;
    r.sampled_windows = 12;
    r.measured_instructions = 24000;
    r.ipc_ci95 = 0.0031999999999999997;
    r.host_seconds = 0.12345678901234567;
    r.sim_cycles_per_second = 8.0012345678901234e9;
    r.sim_instructions_per_second = 1.0000000000000002e9;
    return r;
}

job synthetic_job()
{
    job j;
    j.key = {2, 7, 1, 71};
    j.instructions = 50000;
    j.warmup = 8000;
    j.seed = rng::split(99, 2, 7, 1);
    return j;
}

TEST(jsonl, round_trip_is_exact)
{
    const job j = synthetic_job();
    const hier::run_result r = synthetic_result();
    const std::string line = encode_json_line(j, r);

    const auto decoded = decode_json_line(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->key == j.key);
    EXPECT_EQ(decoded->seed, j.seed);
    EXPECT_EQ(decoded->instructions_requested, j.instructions);
    EXPECT_EQ(decoded->warmup, j.warmup);
    expect_identical(decoded->result, r);
    EXPECT_EQ(decoded->result.host_seconds, r.host_seconds);
    EXPECT_EQ(decoded->result.sim_cycles_per_second, r.sim_cycles_per_second);
    EXPECT_EQ(decoded->result.sim_instructions_per_second,
              r.sim_instructions_per_second);

    // Encoding the decoded run reproduces the exact bytes.
    job j2 = j;
    EXPECT_EQ(encode_json_line(j2, decoded->result), line);
}

TEST(jsonl, sink_emits_one_line_per_run_and_rejects_garbage)
{
    std::ostringstream out;
    jsonl_sink sink(out);
    sink.consume(synthetic_job(), synthetic_result());
    sink.consume(synthetic_job(), synthetic_result());
    sink.finish(); // rows are batched; finish() flushes the tail
    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(decode_json_line(line).has_value());
        ++lines;
    }
    EXPECT_EQ(lines, 2u);

    EXPECT_FALSE(decode_json_line("").has_value());
    EXPECT_FALSE(decode_json_line("not json").has_value());
    EXPECT_FALSE(decode_json_line("{\"config\":").has_value());
    EXPECT_FALSE(decode_json_line("{\"cycles\":\"text\"}").has_value());
    // Unknown key whose skipped value is truncated mid-escape: must fail
    // cleanly, not scan past the end of the buffer.
    EXPECT_FALSE(decode_json_line("{\"x\":[\"\\").has_value());
    EXPECT_FALSE(decode_json_line("{\"x\":{\"y\":\"\\").has_value());
}

TEST(jsonl, truncated_lines_decode_to_nullopt_never_partial_structs)
{
    // A kill mid-write can tear a line anywhere. Cut a real encoded line
    // at every byte: each prefix must decode to nullopt (never UB, never a
    // partially-filled struct presented as valid).
    const std::string line = encode_json_line(synthetic_job(),
                                              synthetic_result());
    for (std::size_t cut = 0; cut < line.size(); ++cut)
        EXPECT_FALSE(decode_json_line(line.substr(0, cut)).has_value())
            << "prefix of " << cut << " bytes decoded";

    // The named torn shapes from the resume contract, explicitly: cut
    // mid-string, cut mid-number, missing closing brace.
    const std::size_t mid_string = line.find("429.m") + 3;
    EXPECT_FALSE(decode_json_line(line.substr(0, mid_string)).has_value());
    const std::size_t mid_number = line.find("987654321") + 4;
    EXPECT_FALSE(decode_json_line(line.substr(0, mid_number)).has_value());
    EXPECT_FALSE(
        decode_json_line(line.substr(0, line.size() - 1)).has_value());
}

TEST(jsonl, status_and_error_round_trip)
{
    const job j = synthetic_job();
    hier::run_result r = synthetic_result();
    r.status = hier::run_status::failed;
    r.error = "injected fault: job 71 attempt 0, with \"quotes\"\\slashes";

    const std::string line = encode_json_line(j, r);
    const auto decoded = decode_json_line(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->result.status, hier::run_status::failed);
    EXPECT_EQ(decoded->result.error, r.error);
    EXPECT_EQ(encode_json_line(j, decoded->result), line);

    // Lines from pre-status writers decode with status == ok ...
    std::string old_line = encode_json_line(j, synthetic_result());
    const std::string status_field = ",\"status\":\"ok\"";
    const std::size_t at = old_line.find(status_field);
    ASSERT_NE(at, std::string::npos);
    old_line.erase(at, status_field.size());
    const auto old_decoded = decode_json_line(old_line);
    ASSERT_TRUE(old_decoded.has_value());
    EXPECT_EQ(old_decoded->result.status, hier::run_status::ok);

    // ... but an unknown status string is a malformed row, not ok.
    std::string mangled = encode_json_line(j, r);
    const std::size_t st = mangled.find("\"status\":\"failed\"");
    ASSERT_NE(st, std::string::npos);
    mangled.replace(st, 17, "\"status\":\"maybe?\"");
    EXPECT_FALSE(decode_json_line(mangled).has_value());
}

TEST(jsonl, batches_rows_and_flushes_on_threshold_finish_and_destruction)
{
    const job j = synthetic_job();
    const hier::run_result r = synthetic_result();
    const std::string line = encode_json_line(j, r) + "\n";

    // Below the threshold nothing reaches the stream until finish().
    std::ostringstream out;
    jsonl_sink sink(out, /*flush_rows=*/3);
    sink.begin(5);
    sink.consume(j, r);
    sink.consume(j, r);
    EXPECT_TRUE(out.str().empty());
    // The third row completes a batch: exactly one write of three rows.
    sink.consume(j, r);
    EXPECT_EQ(out.str(), line + line + line);
    sink.consume(j, r);
    EXPECT_EQ(out.str(), line + line + line);
    sink.finish();
    EXPECT_EQ(out.str(), line + line + line + line);

    // An abandoned sink (no finish(), e.g. early exit) flushes on
    // destruction so the JSON-lines file never silently loses rows.
    std::ostringstream leftover;
    {
        jsonl_sink abandoned(leftover, 100);
        abandoned.consume(j, r);
    }
    EXPECT_EQ(leftover.str(), line);
}

TEST(csv, header_plus_one_row_per_run)
{
    std::ostringstream out;
    csv_sink sink(out);
    sink.begin(1);
    sink.consume(synthetic_job(), synthetic_result());
    std::istringstream in(out.str());
    std::string header, row, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_FALSE(std::getline(in, extra));
    EXPECT_EQ(header.substr(0, 15), "config,workload");
    // The comma-laden config name survives CSV quoting.
    EXPECT_NE(row.find("\"LN3, \"\"quoted\"\", with, commas\""),
              std::string::npos);
}

TEST(runner, sinks_see_jobs_in_flat_order_regardless_of_threads)
{
    struct order_probe final : sink {
        std::vector<std::size_t> flats;
        void consume(const job& j, const hier::run_result&) override
        {
            flats.push_back(j.key.flat);
        }
    };

    sweep s;
    s.add_config(hier::presets::l2_256kb())
        .add_workload(*wl::find_spec2006("456.hmmer"))
        .add_workload(*wl::find_spec2006("401.bzip2"))
        .add_workload(*wl::find_spec2006("429.mcf"))
        .instructions(1500)
        .warmup(300);

    order_probe probe;
    run_sweep(s, {4}, {&probe});
    ASSERT_EQ(probe.flats.size(), 3u);
    EXPECT_TRUE(std::is_sorted(probe.flats.begin(), probe.flats.end()));
}

// --------------------------------------------------------------------------
// App-level option parsing.
// --------------------------------------------------------------------------

TEST(run_app_options, parses_the_shared_flags)
{
    const char* argv[] = {"bench",           "--instructions", "7000",
                          "--warmup",        "900",            "--seed",
                          "3",               "--threads",      "8",
                          "--shard",         "2/5",            "--json",
                          "out.jsonl",       "--replicates",   "4",
                          "--engine",        "paranoid",       "--quiet"};
    const cli_args args(int(sizeof argv / sizeof *argv), argv);
    const app_options opt = parse_app_options(args);
    EXPECT_EQ(opt.instructions, 7000u);
    EXPECT_EQ(opt.warmup, 900u);
    EXPECT_EQ(opt.seed, 3u);
    EXPECT_EQ(opt.threads, 8u);
    EXPECT_EQ(opt.shard_index, 2u);
    EXPECT_EQ(opt.shard_count, 5u);
    EXPECT_EQ(opt.json_path, "out.jsonl");
    EXPECT_EQ(opt.replicates, 4u);
    EXPECT_EQ(opt.engine_mode, sim::schedule_mode::paranoid);
    EXPECT_TRUE(opt.quiet);
}

TEST(run_app_options, engine_defaults_to_idle_skip)
{
    const char* argv[] = {"bench"};
    const app_options opt = parse_app_options(cli_args(1, argv));
    EXPECT_EQ(opt.engine_mode, sim::schedule_mode::idle_skip);

    const char* dense_argv[] = {"bench", "--engine", "dense"};
    EXPECT_EQ(parse_app_options(cli_args(3, dense_argv)).engine_mode,
              sim::schedule_mode::dense);
}

TEST(run_app_options, bad_shard_is_a_cli_error_not_a_full_sweep)
{
    // A mistyped shard must never silently run the full sweep (a fleet
    // would then run N copies of every job). It is a hard CLI error.
    for (const char* bad : {"5/5", "2", "a/4", "0x1/4", "/4", "3/", "-1/4"}) {
        const char* argv[] = {"bench", "--shard", bad};
        const app_options opt = parse_app_options(cli_args(3, argv));
        EXPECT_TRUE(opt.cli_error) << "--shard " << bad;
        EXPECT_NE(opt.cli_error_text.find("--shard"), std::string::npos);
    }
    const char* good[] = {"bench", "--shard", "4/5"};
    EXPECT_FALSE(parse_app_options(cli_args(3, good)).cli_error);
}

TEST(run_app_options, parses_fault_tolerance_flags)
{
    const char* argv[] = {"bench",     "--timeout", "2.5",  "--retries",
                          "3",         "--resume",  "--durable", "16",
                          "--fault",   "throw:7:2"};
    const cli_args args(int(sizeof argv / sizeof *argv), argv);
    const app_options opt = parse_app_options(args);
    ASSERT_FALSE(opt.cli_error) << opt.cli_error_text;
    EXPECT_EQ(opt.timeout_seconds, 2.5);
    EXPECT_EQ(opt.retries, 3u);
    EXPECT_TRUE(opt.resume);
    EXPECT_EQ(opt.durable_rows, 16u);
    ASSERT_TRUE(opt.fault.has_value());
    EXPECT_EQ(opt.fault->action, fault_plan::kind::throw_error);
    EXPECT_EQ(opt.fault->flat, 7u);
    EXPECT_EQ(opt.fault->attempts, 2u);

    const char* bad[] = {"bench", "--fault", "explode:1"};
    EXPECT_TRUE(parse_app_options(cli_args(3, bad)).cli_error);
}

} // namespace
} // namespace lnuca::exp
