// Area and energy model checks: calibration anchors from the paper's
// tables, monotonicity, and accounting identities.
#include "src/power/area_model.h"
#include "src/power/energy_model.h"
#include "src/power/technology.h"

#include <gtest/gtest.h>

namespace lnuca::power {
namespace {

TEST(area, tile_and_l1_anchor_values)
{
    // Table II reverse-engineered anchors (see DESIGN.md): the 8KB tile is
    // ~0.035 mm2 and the dual-ported 32KB L1 ~0.26 mm2 at 32nm.
    EXPECT_NEAR(sram_area_mm2(8_KiB, 2, 1), 0.035, 0.005);
    EXPECT_NEAR(sram_area_mm2(32_KiB, 4, 2), 0.256, 0.03);
}

TEST(area, table2_totals_close_to_paper)
{
    const auto conventional = conventional_l1_l2_area();
    EXPECT_NEAR(conventional.total(), 0.91, 0.08); // paper: 0.91 mm2
    EXPECT_NEAR(lnuca_area(2).total(), 0.46, 0.05); // paper: 0.46
    EXPECT_NEAR(lnuca_area(3).total(), 0.86, 0.08); // paper: 0.86
    EXPECT_NEAR(lnuca_area(4).total(), 1.59, 0.30); // paper: 1.59
}

TEST(area, lnuca3_smaller_than_conventional)
{
    // The paper's headline: LN3-144KB saves area versus L2-256KB.
    EXPECT_LT(lnuca_area(3).total(), conventional_l1_l2_area().total());
    EXPECT_GT(lnuca_area(4).total(), conventional_l1_l2_area().total());
}

TEST(area, network_share_in_paper_range)
{
    for (unsigned levels = 2; levels <= 4; ++levels) {
        const double pct = lnuca_area(levels).network_percent();
        EXPECT_GT(pct, 5.0);
        EXPECT_LT(pct, 25.0); // paper reports 14-19%
    }
}

TEST(area, grows_with_size_and_ports)
{
    EXPECT_LT(sram_area_mm2(8_KiB, 2, 1), sram_area_mm2(16_KiB, 2, 1));
    EXPECT_LT(sram_area_mm2(32_KiB, 4, 1), sram_area_mm2(32_KiB, 4, 2));
    EXPECT_LE(sram_area_mm2(256_KiB, 2, 1), sram_area_mm2(256_KiB, 8, 1));
}

TEST(area, per_bit_efficiency_improves_with_size)
{
    const double small = sram_area_mm2(8_KiB, 2, 1) / (8 * 1024 * 8);
    const double large = sram_area_mm2(8_MiB, 16, 1) / (8.0 * 1024 * 1024 * 8);
    EXPECT_LT(large, small);
}

TEST(area, fabric_network_grows_with_levels)
{
    double previous = 0;
    for (unsigned levels = 2; levels <= 6; ++levels) {
        const double area = fabric_network_area_mm2(fabric::geometry(levels));
        EXPECT_GT(area, previous);
        previous = area;
    }
}

TEST(area, ln2_addition_to_dnuca_is_small)
{
    const auto ln2 = lnuca_area(2);
    const double dnuca =
        32 * dnuca_bank_area_mm2() + 40 * vc_router_area_mm2();
    const double pct = 100.0 * (ln2.storage_mm2 + ln2.network_mm2) / dnuca;
    EXPECT_LT(pct, 3.0); // paper: 1.2%
}

TEST(energy, static_scales_with_cycles)
{
    energy_inputs in;
    in.cycles = 1000;
    in.has_l3 = true;
    const auto e1 = compute_energy(in);
    in.cycles = 2000;
    const auto e2 = compute_energy(in);
    EXPECT_NEAR(e2.static_l3_j, 2 * e1.static_l3_j, 1e-15);
    EXPECT_NEAR(e2.static_l1_j, 2 * e1.static_l1_j, 1e-15);
}

TEST(energy, l3_leakage_dominates_statics)
{
    // Fig. 4(b): "L3 static energy stands out above the rest".
    energy_inputs in;
    in.cycles = 100000;
    in.has_l2 = true;
    in.has_l3 = true;
    const auto e = compute_energy(in);
    EXPECT_GT(e.static_l3_j, e.static_storage_j);
    EXPECT_GT(e.static_l3_j, 5 * e.static_l1_j);
}

TEST(energy, dynamic_counts_events)
{
    energy_inputs in;
    in.cycles = 1;
    in.l1_accesses = 10;
    const auto e = compute_energy(in);
    EXPECT_NEAR(e.dynamic_j, 10 * l1_32k.read_energy_j, 1e-15);
}

TEST(energy, tile_hit_cheaper_than_dnuca_bank)
{
    // The Fig. 5(b) dynamic-energy argument: an 8KB tile access plus its
    // network hops costs far less than a 256KB D-NUCA bank access plus VC
    // routing.
    const double tile_hit = lnuca_tile_8k.read_energy_j +
                            2 * (lnuca_link_hop_j + lnuca_buffer_j +
                                 lnuca_crossbar_j);
    const double bank_hit =
        dnuca_bank_256k.read_energy_j + 10 * (vc_router_flit_j + mesh_link_flit_j);
    EXPECT_LT(tile_hit * 3, bank_hit);
}

TEST(energy, breakdown_total_is_sum)
{
    energy_inputs in;
    in.cycles = 5000;
    in.has_l2 = true;
    in.has_l3 = true;
    in.l1_accesses = 100;
    in.l2_accesses = 10;
    in.l3_accesses = 2;
    in.memory_transfers = 1;
    const auto e = compute_energy(in);
    EXPECT_NEAR(e.total(),
                e.dynamic_j + e.static_l1_j + e.static_storage_j + e.static_l3_j,
                1e-18);
    EXPECT_GT(e.total(), 0.0);
}

TEST(energy, fabric_events_accounted)
{
    energy_inputs base;
    base.cycles = 1;
    energy_inputs with;
    with.cycles = 1;
    with.fabric_tiles = 14;
    with.tile_tag_lookups = 100;
    with.transport_hops = 50;
    with.replacement_hops = 20;
    with.search_hops = 200;
    EXPECT_GT(compute_energy(with).dynamic_j, compute_energy(base).dynamic_j);
    EXPECT_GT(compute_energy(with).static_storage_j,
              compute_energy(base).static_storage_j);
}

} // namespace
} // namespace lnuca::power
