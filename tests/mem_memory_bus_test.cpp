// Main memory channel and split-transaction bus timing.
#include "src/mem/bus.h"
#include "src/mem/main_memory.h"
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <map>

namespace lnuca::mem {
namespace {

struct recorder final : mem_client {
    std::map<txn_id_t, cycle_t> stamped;
    void respond(const mem_response& r) override { stamped[r.id] = r.ready_at; }
};

TEST(main_memory, unloaded_latency_formula)
{
    main_memory m({200, 4, 16, 64});
    // 128B block = 8 chunks of 16B: 200 + 7*4.
    EXPECT_EQ(m.unloaded_latency(128), 228u);
    EXPECT_EQ(m.unloaded_latency(16), 200u);
    EXPECT_EQ(m.unloaded_latency(32), 204u);
    EXPECT_EQ(m.unloaded_latency(0), 200u);
}

TEST(main_memory, read_gets_response_at_latency)
{
    main_memory m({200, 4, 16, 64});
    recorder client;
    m.set_upstream(&client);
    sim::engine e;
    e.add(m);

    mem_request r;
    r.id = 1;
    r.addr = 0x1000;
    r.size = 128;
    r.kind = access_kind::read;
    r.created_at = 0;
    ASSERT_TRUE(m.can_accept(r));
    m.accept(r);
    e.run(1);
    ASSERT_TRUE(client.stamped.count(1));
    EXPECT_EQ(client.stamped[1], 228u);
}

TEST(main_memory, bursts_serialise_on_wires)
{
    main_memory m({200, 4, 16, 64});
    recorder client;
    m.set_upstream(&client);
    sim::engine e;
    e.add(m);

    for (txn_id_t id = 1; id <= 3; ++id) {
        mem_request r;
        r.id = id;
        r.addr = 0x1000 * id;
        r.size = 128;
        r.kind = access_kind::read;
        r.created_at = 0;
        m.accept(r);
    }
    e.run(100);
    // Each 128B burst occupies the wires for 32 cycles.
    EXPECT_EQ(client.stamped[1], 228u);
    EXPECT_EQ(client.stamped[2], 228u + 32);
    EXPECT_EQ(client.stamped[3], 228u + 64);
}

TEST(main_memory, writes_consume_bandwidth_without_response)
{
    main_memory m({200, 4, 16, 64});
    recorder client;
    m.set_upstream(&client);
    sim::engine e;
    e.add(m);

    mem_request w;
    w.id = 7;
    w.addr = 0x40;
    w.size = 128;
    w.kind = access_kind::writeback;
    w.needs_response = false;
    m.accept(w);
    e.run(300);
    EXPECT_TRUE(client.stamped.empty());
    EXPECT_EQ(m.counters().get("transfers"), 1u);
}

TEST(main_memory, queue_depth_backpressure)
{
    main_memory m({200, 4, 16, 2});
    mem_request r;
    r.kind = access_kind::read;
    r.size = 64;
    m.accept(r);
    m.accept(r);
    EXPECT_FALSE(m.can_accept(r));
}

struct sink_port final : mem_port {
    int accepted = 0;
    bool open = true;
    bool can_accept(const mem_request&) const override { return open; }
    void accept(const mem_request&) override { ++accepted; }
};

TEST(bus, forwards_requests_and_responses_with_latency)
{
    bus b({16, 1, 32});
    sink_port sink;
    recorder client;
    b.set_downstream(&sink);
    b.set_upstream(&client);
    sim::engine e;
    e.add(b);

    mem_request r;
    r.id = 1;
    r.addr = 0x100;
    r.size = 8;
    r.kind = access_kind::read;
    r.created_at = 0;
    b.accept(r);
    e.run(4);
    EXPECT_EQ(sink.accepted, 1);

    mem_response resp;
    resp.id = 1;
    resp.ready_at = 10;
    b.respond(resp);
    e.run(20);
    ASSERT_TRUE(client.stamped.count(1));
    // arbitration (1) then a 32B/16B = 2-cycle stream: ready_at is the
    // cycle the last chunk lands.
    EXPECT_EQ(client.stamped[1], 10u + 1 + 1);
}

TEST(bus, retries_when_target_busy)
{
    bus b({16, 1, 32});
    sink_port sink;
    sink.open = false;
    b.set_downstream(&sink);
    sim::engine e;
    e.add(b);

    mem_request r;
    r.id = 2;
    r.kind = access_kind::read;
    r.created_at = 0;
    b.accept(r);
    e.run(5);
    EXPECT_EQ(sink.accepted, 0);
    EXPECT_GT(b.counters().get("down_stall"), 0u);
    sink.open = true;
    e.run(3);
    EXPECT_EQ(sink.accepted, 1);
    EXPECT_TRUE(b.quiescent());
}

TEST(bus, write_payload_occupies_wires)
{
    bus b({16, 1, 32});
    sink_port sink;
    b.set_downstream(&sink);
    sim::engine e;
    e.add(b);

    mem_request w;
    w.id = 3;
    w.size = 64; // 4 cycles on 16B wires
    w.kind = access_kind::writeback;
    w.created_at = 0;
    b.accept(w);
    mem_request r;
    r.id = 4;
    r.size = 8;
    r.kind = access_kind::read;
    r.created_at = 0;
    b.accept(r);
    e.run(2);
    EXPECT_EQ(sink.accepted, 1); // write went through
    e.run(2);
    EXPECT_EQ(sink.accepted, 1); // read still waiting for the wires
    e.run(4);
    EXPECT_EQ(sink.accepted, 2);
}

} // namespace
} // namespace lnuca::mem
