// L-NUCA fabric behaviour: search/transport/replacement operations, global
// miss timing, exclusion, victim-cache flow, store handling and stats.
#include "src/fabric/lnuca_cache.h"
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace lnuca::fabric {
namespace {

struct recorder final : mem::mem_client {
    std::map<txn_id_t, mem::mem_response> responses;
    void respond(const mem::mem_response& r) override { responses[r.id] = r; }
};

struct stub_next_level final : sim::ticked, mem::mem_port {
    explicit stub_next_level(cycle_t latency) : latency_(latency) {}

    bool can_accept(const mem::mem_request&) const override { return true; }
    void accept(const mem::mem_request& r) override
    {
        ++accepted;
        if (r.kind == mem::access_kind::read && r.needs_response)
            pending_.push(r.created_at + latency_, r);
        if (r.kind == mem::access_kind::writeback && r.dirty)
            ++dirty_writebacks;
        if (r.kind == mem::access_kind::write)
            ++word_writes;
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending_.pop_ready(now)) {
            mem::mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::l3;
            if (client)
                client->respond(resp);
        }
    }

    cycle_t latency_;
    int accepted = 0;
    int dirty_writebacks = 0;
    int word_writes = 0;
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem::mem_request> pending_;
};

struct fabric_fixture : ::testing::Test {
    void build(unsigned levels = 3, cycle_t next_latency = 20)
    {
        config.levels = levels;
        fab = std::make_unique<lnuca_cache>(config, ids);
        next = std::make_unique<stub_next_level>(next_latency);
        fab->set_upstream(&client);
        fab->set_downstream(next.get());
        next->client = fab.get();
        engine.add(*fab);
        engine.add(*next);
    }

    txn_id_t read(addr_t addr)
    {
        mem::mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = mem::access_kind::read;
        r.created_at = engine.now();
        EXPECT_TRUE(fab->can_accept(r));
        fab->accept(r);
        return r.id;
    }

    void store_miss(addr_t addr)
    {
        mem::mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = mem::access_kind::write;
        r.needs_response = false;
        r.created_at = engine.now();
        EXPECT_TRUE(fab->can_accept(r));
        fab->accept(r);
    }

    void evict(addr_t addr, bool dirty)
    {
        mem::mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 32;
        r.kind = mem::access_kind::writeback;
        r.needs_response = false;
        r.dirty = dirty;
        r.created_at = engine.now();
        EXPECT_TRUE(fab->can_accept(r));
        fab->accept(r);
    }

    fabric_config config;
    mem::txn_id_source ids;
    recorder client;
    std::unique_ptr<lnuca_cache> fab;
    std::unique_ptr<stub_next_level> next;
    sim::engine engine;
};

TEST_F(fabric_fixture, global_miss_forwards_after_rings_plus_one)
{
    build(3);
    const cycle_t start = engine.now();
    read(0x1000);
    // Search: inject at start, ring 1 at +1, ring 2 at +2, miss line at +3.
    engine.run(3);
    EXPECT_EQ(next->accepted, 0);
    engine.run(1);
    EXPECT_EQ(next->accepted, 1);
    EXPECT_EQ(fab->counters().get("global_misses"), 1u);
    (void)start;
}

TEST_F(fabric_fixture, response_from_next_level_reaches_client)
{
    build(3, 20);
    const txn_id_t id = read(0x1000);
    engine.run(40);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::l3);
    EXPECT_EQ(client.responses[id].fabric_level, 0);
}

TEST_F(fabric_fixture, evicted_block_is_found_and_migrates_back)
{
    build(3);
    evict(0x2000, false);
    engine.run(10); // let the domino install it into a tile
    EXPECT_GT(fab->counters().get("tile_data_writes"), 0u);

    const txn_id_t id = read(0x2000);
    engine.run(12);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::lnuca_tile);
    EXPECT_EQ(client.responses[id].fabric_level, 2); // nearest level
    EXPECT_FALSE(client.responses[id].dirty);
    // Content exclusion: the block left the fabric when it migrated.
    EXPECT_EQ(fab->copies_of(0x2000), 0u);
    EXPECT_EQ(next->accepted, 0); // never went to the next level
}

TEST_F(fabric_fixture, dirty_state_survives_migration)
{
    build(3);
    evict(0x3000, true);
    engine.run(10);
    const txn_id_t id = read(0x3000);
    engine.run(12);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_TRUE(client.responses[id].dirty);
}

TEST_F(fabric_fixture, eviction_queue_snoop_hits_immediately)
{
    build(3);
    evict(0x4000, true);
    // Read in the same cycle: the block is still in the r-tile's output
    // buffers (the eviction queue).
    const txn_id_t id = read(0x4000);
    engine.run(4);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].fabric_level, 2);
    EXPECT_TRUE(client.responses[id].dirty);
    EXPECT_EQ(fab->counters().get("root_ubuffer_hit"), 1u);
    EXPECT_EQ(fab->copies_of(0x4000), 0u);
}

TEST_F(fabric_fixture, u_buffer_comparators_catch_blocks_in_transit)
{
    build(3);
    // Keep evicting into the same set so blocks domino between tiles, then
    // search for one that is likely in transit.
    for (int i = 0; i < 12; ++i) {
        evict(0x8000 + addr_t(i) * 0x1000, false);
        engine.run(1);
    }
    const txn_id_t id = read(0x8000 + 11 * 0x1000);
    engine.run(20);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_EQ(client.responses[id].served_by, mem::service_level::lnuca_tile);
}

TEST_F(fabric_fixture, store_hit_dirties_in_place)
{
    build(3);
    evict(0x5000, false);
    engine.run(10);
    store_miss(0x5000);
    engine.run(8);
    EXPECT_EQ(fab->counters().get("store_hits_in_place"), 1u);
    EXPECT_EQ(next->word_writes, 0);
    // The block is still in the fabric (no migration for stores) and the
    // next read returns it dirty.
    const txn_id_t id = read(0x5000);
    engine.run(12);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_TRUE(client.responses[id].dirty);
}

TEST_F(fabric_fixture, store_global_miss_forwards_write)
{
    build(3);
    store_miss(0x6000);
    engine.run(10);
    EXPECT_EQ(next->word_writes, 1);
    EXPECT_EQ(fab->counters().get("write_misses_out"), 1u);
    EXPECT_TRUE(fab->quiescent());
}

TEST_F(fabric_fixture, store_merges_into_inflight_read)
{
    build(3, 20);
    const txn_id_t id = read(0x7000);
    engine.run(2);
    store_miss(0x7000); // merges; refill must come back dirty
    engine.run(40);
    ASSERT_TRUE(client.responses.count(id));
    EXPECT_TRUE(client.responses[id].dirty);
    EXPECT_EQ(fab->counters().get("store_merged"), 1u);
    EXPECT_EQ(next->word_writes, 0); // absorbed by the merge
}

TEST_F(fabric_fixture, demand_read_waits_for_pure_write_search)
{
    build(3);
    store_miss(0x9000);
    mem::mem_request r;
    r.id = ids.next();
    r.addr = 0x9000;
    r.kind = mem::access_kind::read;
    r.created_at = engine.now();
    EXPECT_FALSE(fab->can_accept(r)); // cannot merge into a pure write
    engine.run(10);                   // write search resolves
    r.created_at = engine.now();
    EXPECT_TRUE(fab->can_accept(r));
}

TEST_F(fabric_fixture, mshr_merges_reads_to_same_block)
{
    build(3, 20);
    const txn_id_t a = read(0xa000);
    engine.run(1);
    const txn_id_t b = read(0xa008);
    engine.run(40);
    EXPECT_TRUE(client.responses.count(a));
    EXPECT_TRUE(client.responses.count(b));
    EXPECT_EQ(next->accepted, 1);
    EXPECT_EQ(fab->counters().get("mshr_merge"), 1u);
}

TEST_F(fabric_fixture, capacity_spills_through_corner_exits)
{
    build(2); // 5 tiles = 1280 blocks
    // Push far more distinct blocks than the fabric holds.
    for (int i = 0; i < 2000; ++i) {
        evict(0x100000 + addr_t(i) * 32, i % 2 == 0);
        engine.run(2);
    }
    engine.run(500);
    EXPECT_GT(fab->counters().get("dirty_exits_written_back"), 0u);
    EXPECT_GT(fab->counters().get("clean_exits_dropped"), 0u);
    EXPECT_GT(next->dirty_writebacks, 0);
    // Occupancy cannot exceed capacity.
    std::uint64_t valid = 0;
    for (tile_index i = 0; i < fab->geo().tile_count(); ++i)
        valid += fab->tile_at(i).cache.valid_count();
    EXPECT_LE(valid, fab->tile_capacity_bytes() / 32);
}

TEST_F(fabric_fixture, exclusion_invariant_under_stress)
{
    // Protocol-respecting random driver: like a real r-tile, it only evicts
    // blocks it owns (obtained through a completed read) and never holds a
    // block it has evicted. The fabric must keep at most one copy of every
    // block at all times.
    build(3, 8);
    rng rng(7);
    std::vector<addr_t> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(0x40000 + addr_t(i) * 32);

    std::set<addr_t> owned;    // blocks currently "in the L1"
    std::set<addr_t> fetching; // reads in flight
    std::map<txn_id_t, addr_t> inflight;

    for (int step = 0; step < 4000; ++step) {
        // Collect completed reads: those blocks are now owned.
        for (const auto& [id, response] : client.responses) {
            const auto it = inflight.find(id);
            if (it != inflight.end()) {
                owned.insert(it->second);
                fetching.erase(it->second);
                inflight.erase(it);
                break;
            }
        }

        const addr_t block = blocks[rng.below(blocks.size())];
        mem::mem_request r;
        r.id = ids.next();
        r.addr = block;
        r.created_at = engine.now();
        const auto pick = rng.below(3);
        if (pick == 0 && !owned.count(block) && !fetching.count(block)) {
            r.kind = mem::access_kind::read;
            if (fab->can_accept(r)) {
                fab->accept(r);
                fetching.insert(block);
                inflight[r.id] = block;
            }
        } else if (pick == 1 && !owned.count(block) && !fetching.count(block)) {
            r.kind = mem::access_kind::write;
            r.needs_response = false;
            if (fab->can_accept(r))
                fab->accept(r);
        } else if (pick == 2 && owned.count(block)) {
            r.kind = mem::access_kind::writeback;
            r.needs_response = false;
            r.dirty = rng.chance(0.5);
            if (fab->can_accept(r)) {
                fab->accept(r);
                owned.erase(block);
            }
        }
        engine.run(1);
        if (step % 64 == 0) {
            for (const addr_t b : blocks)
                ASSERT_LE(fab->copies_of(b) + (owned.count(b) ? 1u : 0u), 1u)
                    << "duplicate copy of a block";
        }
    }
    engine.run(2000);
    EXPECT_TRUE(fab->quiescent());
    EXPECT_EQ(fab->counters().get("false_global_misses"), 0u);
    EXPECT_EQ(fab->counters().get("install_conflicts"), 0u);
}

TEST_F(fabric_fixture, prewarm_places_closest_first)
{
    build(3);
    // Fill exactly one Le2 tile set's worth and check level 2 got it.
    EXPECT_TRUE(fab->prewarm(0x1000));
    bool in_level2 = false;
    for (const tile_index i : fab->geo().tiles_in_level(2))
        in_level2 |= fab->tile_at(i).cache.probe(0x1000).has_value();
    EXPECT_TRUE(in_level2);
    // Duplicate prewarm keeps a single copy.
    EXPECT_TRUE(fab->prewarm(0x1000));
    EXPECT_EQ(fab->copies_of(0x1000), 1u);
}

TEST_F(fabric_fixture, prewarm_overflows_outward_then_fails_when_full)
{
    build(2); // capacity 1280 blocks
    std::uint64_t installed = 0;
    for (std::uint64_t j = 0; j < 4000; ++j)
        installed += fab->prewarm(0x200000 + j * 32) ? 1 : 0;
    EXPECT_EQ(installed, fab->tile_capacity_bytes() / 32);
}

TEST_F(fabric_fixture, transport_latency_equals_minimum_when_uncontended)
{
    build(4);
    // One isolated hit: actual transport time equals the no-contention
    // minimum (ratio exactly 1).
    evict(0xb000, false);
    engine.run(20);
    read(0xb000);
    engine.run(20);
    ASSERT_GT(fab->transport_min_cycles(), 0u);
    EXPECT_EQ(fab->transport_actual_cycles(), fab->transport_min_cycles());
}

TEST_F(fabric_fixture, per_level_hit_counters)
{
    build(3);
    evict(0xc000, false);
    engine.run(10);
    read(0xc000);
    engine.run(15);
    EXPECT_EQ(fab->read_hits_in_level(2) + fab->read_hits_in_level(3), 1u);
}

TEST_F(fabric_fixture, search_bandwidth_one_per_cycle)
{
    build(2, 30);
    // Issue several distinct misses back-to-back; all must eventually be
    // forwarded (pipelined searches, no loss).
    std::vector<txn_id_t> ids_out;
    for (int i = 0; i < 6; ++i) {
        ids_out.push_back(read(0xd000 + addr_t(i) * 64));
        engine.run(1);
    }
    engine.run(80);
    for (const txn_id_t id : ids_out)
        EXPECT_TRUE(client.responses.count(id));
    EXPECT_EQ(next->accepted, 6);
}

TEST_F(fabric_fixture, quiescent_initially_and_after_traffic)
{
    build(3);
    EXPECT_TRUE(fab->quiescent());
    read(0xe000);
    EXPECT_FALSE(fab->quiescent());
    engine.run(60);
    EXPECT_TRUE(fab->quiescent());
}

} // namespace
} // namespace lnuca::fabric
