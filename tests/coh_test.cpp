// CMP coherence: MESI state transitions through the hub, directory
// invariants, producer/consumer and ping-pong unit workloads with known
// hit/invalidate counts, and the whole-system CMP assembly (per-core IPC,
// dense==idle_skip bit-identity, paranoid per-cycle invariant checking).
#include "src/coh/coherence_hub.h"
#include "src/hier/presets.h"
#include "src/hier/system.h"
#include "src/sim/engine.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <map>

namespace lnuca::coh {
namespace {

using mem::access_kind;
using mem::mem_request;
using mem::mem_response;

/// Records responses with their arrival cycle.
struct recorder final : mem::mem_client {
    std::map<txn_id_t, mem_response> responses;

    void respond(const mem_response& r) override { responses[r.id] = r; }
};

/// Shared level stub: answers reads after a fixed latency, counts writes.
struct stub_memory final : sim::ticked, mem::mem_port {
    explicit stub_memory(cycle_t latency) : latency_(latency) {}

    bool can_accept(const mem_request&) const override { return true; }
    void accept(const mem_request& r) override
    {
        ++accepted;
        if (r.kind == access_kind::read && r.needs_response)
            pending_.push(r.created_at + latency_, r);
        if (r.kind == access_kind::writeback) {
            ++writebacks;
            if (r.dirty)
                ++dirty_writebacks;
        }
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending_.pop_ready(now)) {
            mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::memory;
            if (client)
                client->respond(resp);
        }
    }
    cycle_t next_event(cycle_t) const override
    {
        return pending_.next_ready();
    }

    cycle_t latency_;
    int accepted = 0;
    int writebacks = 0;
    int dirty_writebacks = 0;
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem_request> pending_;
};

struct harness {
    static constexpr unsigned k_cores = 2;

    void build(std::uint32_t ways = 2, cycle_t memory_latency = 20,
               std::uint32_t snoop_latency = 2)
    {
        coherence_config cc;
        cc.cores = k_cores;
        cc.block_bytes = 32;
        cc.directory_entries = 1024;
        cc.snoop_latency = snoop_latency;
        hub = std::make_unique<coherence_hub>(cc, ids);
        memory = std::make_unique<stub_memory>(memory_latency);
        for (unsigned i = 0; i < k_cores; ++i) {
            mem::cache_config c;
            c.name = "L1#" + std::to_string(i);
            c.size_bytes = ways == 1 ? 512 : 1_KiB;
            c.ways = ways;
            c.block_bytes = 32;
            c.completion_latency = 2;
            c.ports = 2;
            c.write_through = false;
            c.write_allocate = true;
            c.writeback_clean = true;
            c.coherent = true;
            c.core_id = mem::core_id_t(i);
            c.mshr_entries = 4;
            c.mshr_secondary = 2;
            c.write_buffer_entries = 4;
            c.level_tag = mem::service_level::l1;
            l1s.push_back(std::make_unique<mem::conventional_cache>(c, ids));
            l1s.back()->set_upstream(&cores[i]);
            l1s.back()->set_downstream(hub.get());
            hub->attach_l1(mem::core_id_t(i), l1s.back().get());
        }
        hub->set_downstream(memory.get());
        memory->client = hub.get();
        for (auto& l1 : l1s)
            engine.add(*l1);
        engine.add(*hub);
        engine.add(*memory);
    }

    txn_id_t issue(unsigned core, addr_t addr, access_kind kind)
    {
        mem_request r;
        r.id = ids.next();
        r.addr = addr;
        r.size = 8;
        r.kind = kind;
        r.created_at = engine.now();
        EXPECT_TRUE(l1s[core]->can_accept(r));
        l1s[core]->accept(r);
        return r.id;
    }

    /// Step until core's response for `id` arrives (bounded).
    void await(unsigned core, txn_id_t id, cycle_t budget = 600)
    {
        const cycle_t deadline = engine.now() + budget;
        while (cores[core].responses.find(id) == cores[core].responses.end() &&
               engine.now() < deadline)
            engine.run(1);
        ASSERT_TRUE(cores[core].responses.find(id) !=
                    cores[core].responses.end())
            << "response " << id << " never arrived";
    }

    std::uint64_t hub_count(const char* name) const
    {
        return hub->counters().get(name);
    }

    mem::txn_id_source ids;
    sim::engine engine;
    recorder cores[k_cores];
    std::vector<std::unique_ptr<mem::conventional_cache>> l1s;
    std::unique_ptr<coherence_hub> hub;
    std::unique_ptr<stub_memory> memory;
};

struct coh_fixture : ::testing::Test, harness {};

TEST_F(coh_fixture, first_read_grants_exclusive)
{
    build();
    const addr_t a = 0x1000;
    const txn_id_t id = issue(0, a, access_kind::read);
    await(0, id);
    EXPECT_EQ(cores[0].responses[id].served_by, mem::service_level::memory);
    // The grant surfaces as the line's E permission, not in the core-facing
    // response (exclusivity is L1<->hub protocol state).
    EXPECT_TRUE(l1s[0]->tags().is_exclusive(a));

    const dir_entry* e = hub->dir().find(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, dir_state::exclusive_modified);
    EXPECT_EQ(e->owner, 0);
    EXPECT_EQ(e->sharers, 1u);
    EXPECT_EQ(hub_count("fetches_below"), 1u);
    hub->check_invariants();
}

TEST_F(coh_fixture, second_reader_downgrades_to_shared)
{
    build();
    const addr_t a = 0x2000;
    await(0, issue(0, a, access_kind::read));
    const txn_id_t id = issue(1, a, access_kind::read);
    await(1, id);

    // Cache-to-cache forward from the (clean) E owner; both end Shared.
    EXPECT_FALSE(cores[1].responses[id].exclusive);
    EXPECT_EQ(cores[1].responses[id].served_by, mem::service_level::peer_l1);
    EXPECT_FALSE(l1s[0]->tags().is_exclusive(a));
    EXPECT_FALSE(l1s[1]->tags().is_exclusive(a));

    const dir_entry* e = hub->dir().find(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, dir_state::shared);
    EXPECT_EQ(e->sharers, 3u);
    EXPECT_EQ(hub_count("downgrades_sent"), 1u);
    EXPECT_EQ(hub_count("c2c_transfers"), 1u);
    // The owner's copy was clean: nothing flushed to the shared level.
    EXPECT_EQ(memory->dirty_writebacks, 0);
    hub->check_invariants();
}

TEST_F(coh_fixture, store_miss_fetches_ownership_and_dirties)
{
    build();
    const addr_t a = 0x3000;
    const txn_id_t id = issue(0, a, access_kind::write);
    await(0, id);
    EXPECT_EQ(hub_count("rfos"), 1u);
    EXPECT_TRUE(l1s[0]->tags().is_exclusive(a));
    EXPECT_TRUE(l1s[0]->tags().probe(a)->was_dirty);
    hub->check_invariants();
}

TEST_F(coh_fixture, producer_consumer_known_counts)
{
    build();
    const addr_t a = 0x4000;
    constexpr int k_rounds = 8;
    for (int round = 0; round < k_rounds; ++round) {
        // Producer writes (round 0: cold RFO; later: upgrade after the
        // consumer's read left both copies Shared).
        await(0, issue(0, a, access_kind::write));
        // Consumer reads: the M owner downgrades, dirty data flushes to
        // the shared level, the line forwards cache-to-cache.
        const txn_id_t id = issue(1, a, access_kind::read);
        await(1, id);
        EXPECT_EQ(cores[1].responses[id].served_by,
                  mem::service_level::peer_l1);
        hub->check_invariants();
    }
    // Round 0 fetches the block from below; every round downgrades the
    // producer (flushing its dirty line) and forwards cache-to-cache;
    // rounds 1.. upgrade the producer's Shared copy, invalidating the
    // consumer's.
    EXPECT_EQ(hub_count("rfos"), std::uint64_t(k_rounds));
    EXPECT_EQ(hub_count("upgrades"), std::uint64_t(k_rounds - 1));
    EXPECT_EQ(hub_count("invalidations_sent"), std::uint64_t(k_rounds - 1));
    EXPECT_EQ(hub_count("downgrades_sent"), std::uint64_t(k_rounds));
    EXPECT_EQ(hub_count("c2c_transfers"), std::uint64_t(k_rounds));
    EXPECT_EQ(memory->dirty_writebacks, k_rounds);
    EXPECT_EQ(hub_count("fetches_below"), 1u);
    // The consumer's L1 saw one invalidation per upgrade round.
    EXPECT_EQ(l1s[1]->counters().get("snoop_inv"),
              std::uint64_t(k_rounds - 1));
}

TEST_F(coh_fixture, ping_pong_dirty_line_migrates)
{
    build();
    const addr_t a = 0x5000;
    constexpr int k_rounds = 10;
    for (int round = 0; round < k_rounds; ++round) {
        const unsigned writer = round % 2;
        await(writer, issue(writer, a, access_kind::write));
        hub->check_invariants();
    }
    // The first write misses to the shared level; every later write
    // recalls the other core's M line, which migrates cache-to-cache
    // dirty - the shared level is never touched again.
    EXPECT_EQ(hub_count("rfos"), std::uint64_t(k_rounds));
    EXPECT_EQ(hub_count("invalidations_sent"), std::uint64_t(k_rounds - 1));
    EXPECT_EQ(hub_count("c2c_dirty"), std::uint64_t(k_rounds - 1));
    EXPECT_EQ(hub_count("fetches_below"), 1u);
    EXPECT_EQ(memory->dirty_writebacks, 0);
    EXPECT_EQ(l1s[0]->counters().get("snoop_inv") +
                  l1s[1]->counters().get("snoop_inv"),
              std::uint64_t(k_rounds - 1));
}

TEST_F(coh_fixture, invariant_checker_catches_unknown_sharer)
{
    build();
    const addr_t a = 0x6000;
    await(0, issue(0, a, access_kind::read));
    hub->check_invariants();
    // Smuggle a copy into core 1 behind the directory's back.
    l1s[1]->tags().install(a, false);
    EXPECT_THROW(hub->check_invariants(), coherence_error);
}

TEST_F(coh_fixture, eviction_notifies_directory)
{
    build();
    // 1KiB / 2 ways / 32B blocks = 16 sets; these three map to set 0.
    const addr_t a = 0x10000, b = 0x20000, c = 0x30000;
    await(0, issue(0, a, access_kind::read));
    await(0, issue(0, b, access_kind::read));
    await(0, issue(0, c, access_kind::read)); // evicts a (LRU)
    // Let the eviction writeback drain through the hub.
    engine.run(50);
    const dir_entry* e = hub->dir().find(a);
    EXPECT_TRUE(e == nullptr || (e->sharers & 1u) == 0);
    hub->check_invariants();
}

TEST_F(coh_fixture, eviction_racing_own_upgrade_keeps_directory_consistent)
{
    // A store-upgrade whose line is capacity-evicted while the RFO is in
    // flight: the eviction notification may reach the hub before or after
    // the transaction finishes. Either ordering must leave the directory
    // tracking the refetched copy (the post-finish ordering used to free
    // the entry under a live E/M line). Scanning start offsets covers the
    // interleavings.
    for (cycle_t offset = 0; offset < 16; ++offset) {
        SCOPED_TRACE("offset " + std::to_string(offset));
        harness h;
        // Direct-mapped 512B L1s (any same-set fill displaces X without
        // LRU games) and a fast shared level, so the conflicting fill can
        // land inside the upgrade's flight time.
        h.build(/*ways=*/1, /*memory_latency=*/2);
        // 512B / 1 way / 32B blocks = 16 sets; X and Y share set 0.
        const addr_t x = 0x40000, y = 0x50000;
        h.await(0, h.issue(0, x, access_kind::read));
        h.await(1, h.issue(1, x, access_kind::read)); // X now Shared {0, 1}
        // Conflicting read first: its fill displaces X from core 0 while
        // the store's upgrade RFO (issued `offset` cycles later) is still
        // in flight. Scanning offsets covers eviction-notification-
        // before-finish and -after-finish orderings.
        const txn_id_t ry = h.issue(0, y, access_kind::read);
        h.engine.run(offset);
        const txn_id_t store = h.issue(0, x, access_kind::write);
        h.await(0, ry);
        h.await(0, store);
        h.engine.run(60); // drain trailing writebacks
        h.hub->check_invariants();
        // Whatever core 0 still caches, the directory must know about.
        for (const addr_t a : {x, y}) {
            if (!h.l1s[0]->tags().probe(a))
                continue;
            const dir_entry* e = h.hub->dir().find(a);
            ASSERT_NE(e, nullptr);
            EXPECT_NE(e->sharers & 1u, 0u);
        }
    }
}

TEST_F(coh_fixture, overlapping_stores_never_grant_two_exclusives)
{
    // Both cores store to X with every small skew: core B's recall can
    // land while core A's exclusive-granting fill is still in flight.
    // The snoop must wait for the fill (retry), not invalidate the stale
    // tags copy and let the fill re-install E/M behind the directory's
    // back. Scanning skews covers the grant/install window.
    for (cycle_t offset = 0; offset < 14; ++offset) {
        SCOPED_TRACE("offset " + std::to_string(offset));
        harness h;
        // A snoop hop faster than the response hop makes the
        // grant-vs-install window deterministic; in the shipped presets
        // the same window opens whenever refill backlog delays a fill.
        h.build(/*ways=*/2, /*memory_latency=*/20, /*snoop_latency=*/1);
        const addr_t x = 0x7000;
        // Both cores start with X Shared so both stores are upgrades.
        h.await(0, h.issue(0, x, access_kind::read));
        h.await(1, h.issue(1, x, access_kind::read));
        const txn_id_t s0 = h.issue(0, x, access_kind::write);
        h.engine.run(offset);
        const txn_id_t s1 = h.issue(1, x, access_kind::write);
        h.await(0, s0);
        h.await(1, s1);
        h.engine.run(60);
        h.hub->check_invariants();
        EXPECT_FALSE(h.l1s[0]->tags().is_exclusive(x) &&
                     h.l1s[1]->tags().is_exclusive(x));
    }
}

// ---------------------------------------------------------------------------
// Whole-system CMP assembly.
// ---------------------------------------------------------------------------

hier::system_config with_engine(hier::system_config c, sim::schedule_mode m)
{
    c.engine_mode = m;
    return c;
}

TEST(cmp_system, two_core_run_reports_per_core_ipc)
{
    const auto& suite = wl::spec2006_suite();
    hier::system sys(hier::presets::cmp(hier::presets::l2_256kb(), 2),
                     suite.front(), 42);
    EXPECT_EQ(sys.cores(), 2u);
    ASSERT_NE(sys.hub(), nullptr);
    const hier::run_result r = sys.run(4000, 800);
    EXPECT_EQ(r.cores, 2u);
    ASSERT_EQ(r.per_core_ipc.size(), 2u);
    EXPECT_GT(r.per_core_ipc[0], 0.0);
    EXPECT_GT(r.per_core_ipc[1], 0.0);
    // Each core commits its quota (the commit stage may overshoot by up to
    // commit_width - 1 in its final cycle, as in the single-core driver).
    EXPECT_GE(r.instructions, 8000u);
    EXPECT_LT(r.instructions, 8000u + 2 * 4);
    EXPECT_GT(r.ipc, 0.0);
    sys.hub()->check_invariants();
}

TEST(cmp_system, all_three_backends_run)
{
    const auto& suite = wl::spec2006_suite();
    for (const auto& base :
         {hier::presets::l2_256kb(), hier::presets::lnuca_l3(3),
          hier::presets::dnuca_4x8()}) {
        hier::system sys(hier::presets::cmp(base, 2), suite.front(), 7);
        const hier::run_result r = sys.run(2500, 500);
        EXPECT_EQ(r.cores, 2u) << base.name;
        EXPECT_GT(r.per_core_ipc[0], 0.0) << base.name;
        EXPECT_GT(r.per_core_ipc[1], 0.0) << base.name;
        sys.hub()->check_invariants();
    }
}

TEST(cmp_system, heterogeneous_mix_labels_workloads)
{
    const auto& suite = wl::spec2006_suite();
    std::vector<wl::workload_profile> mix{suite[0], suite[1]};
    hier::system sys(hier::presets::cmp(hier::presets::l2_256kb(), 2), mix,
                     11);
    const hier::run_result r = sys.run(2000, 400);
    EXPECT_NE(r.workload_name.find(suite[0].name), std::string::npos);
    EXPECT_NE(r.workload_name.find(suite[1].name), std::string::npos);
}

TEST(cmp_system, raw_cores_field_on_stock_preset_stays_coherent)
{
    // Setting the public `cores` field directly on a stock preset (whose
    // write-through L1 MESI cannot work over) must normalise the private
    // L1s rather than silently corrupt the directory.
    hier::system_config c = hier::presets::l2_256kb();
    c.cores = 2;
    c.engine_mode = sim::schedule_mode::paranoid;
    hier::system sys(c, wl::spec2006_suite().front(), 17);
    const hier::run_result r = sys.run(1200, 250);
    EXPECT_GT(r.ipc, 0.0);
    sys.hub()->check_invariants();
}

TEST(cmp_system, cores1_config_builds_single_core_wiring)
{
    const auto& suite = wl::spec2006_suite();
    hier::system_config c = hier::presets::l2_256kb();
    c.cores = 1;
    hier::system sys(c, suite.front(), 3);
    EXPECT_EQ(sys.cores(), 1u);
    EXPECT_EQ(sys.hub(), nullptr);
}

TEST(cmp_system, dense_equals_idle_skip)
{
    const auto& suite = wl::spec2006_suite();
    for (const auto& base :
         {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2)}) {
        const auto cfg = hier::presets::cmp(base, 2);
        hier::system dense(with_engine(cfg, sim::schedule_mode::dense),
                           suite.front(), 5);
        hier::system skip(with_engine(cfg, sim::schedule_mode::idle_skip),
                          suite.front(), 5);
        const hier::run_result a = dense.run(3000, 600);
        const hier::run_result b = skip.run(3000, 600);
        expect_sim_fields_identical(a, b);
    }
}

TEST(cmp_system, paranoid_mode_checks_invariants_every_cycle)
{
    const auto& suite = wl::spec2006_suite();
    for (const auto& base :
         {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2)}) {
        hier::system sys(with_engine(hier::presets::cmp(base, 2),
                                     sim::schedule_mode::paranoid),
                         suite.front(), 9);
        const hier::run_result r = sys.run(1500, 300);
        EXPECT_GT(r.ipc, 0.0) << base.name;
    }
}

TEST(cmp_system, four_cores_scale_aggregate_throughput)
{
    const auto& suite = wl::spec2006_suite();
    const auto cfg = hier::presets::cmp(hier::presets::l2_256kb(), 4);
    hier::system sys(cfg, suite.front(), 21);
    const hier::run_result r = sys.run(2000, 400);
    EXPECT_EQ(r.cores, 4u);
    ASSERT_EQ(r.per_core_ipc.size(), 4u);
    EXPECT_GE(r.instructions, 8000u);
    EXPECT_LT(r.instructions, 8000u + 4 * 4);
    // Multiprogrammed lanes are independent: aggregate IPC must exceed any
    // single lane's.
    EXPECT_GT(r.ipc, r.per_core_ipc[0]);
    sys.hub()->check_invariants();
}

TEST(cmp_system, weighted_speedup_against_baseline)
{
    const auto& suite = wl::spec2006_suite();
    const auto base = hier::presets::l2_256kb();
    const hier::run_result single =
        hier::run_one(base, suite.front(), 3000, 600, 13);
    hier::system sys(hier::presets::cmp(base, 2), suite.front(), 13);
    hier::run_result cmp2 = sys.run(3000, 600);
    cmp2.weighted_speedup = hier::weighted_speedup(cmp2, single);
    EXPECT_GT(cmp2.weighted_speedup, 0.0);
    // Two multiprogrammed cores on a shared fabric land between serialised
    // (1x) and perfectly parallel (2x) - generous bounds either side
    // tolerate contention and warm-up noise.
    EXPECT_LT(cmp2.weighted_speedup, 2.3);
}

} // namespace
} // namespace lnuca::coh
