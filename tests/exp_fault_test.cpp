// Fault-isolation, timeout/retry, and kill-and-resume coverage for the
// experiment runner, driven by the test-only fault_plan harness
// (src/exp/fault.h).
//
// Test order is deliberate: the fork()-based kill-and-resume tests run
// BEFORE any test that abandons a detached thread (stall/timeout, bounded
// pool shutdown). fork() in a process with detached threads mid-sleep is a
// classic malloc-lock hazard — the child could inherit a locked allocator.
#include "src/exp/fault.h"
#include "src/exp/pool.h"
#include "src/exp/run_app.h"
#include "src/exp/runner.h"
#include "src/exp/sink.h"
#include "src/hier/presets.h"
#include "src/workloads/spec2006.h"
#include "tests/run_result_compare.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace lnuca::exp {
namespace {

// The 2-config x 3-workload sweep every test here runs (6 jobs).
std::vector<hier::system_config> bench_configs()
{
    return {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2)};
}

std::vector<wl::workload_profile> bench_workloads()
{
    std::vector<wl::workload_profile> out;
    for (const char* name : {"456.hmmer", "429.mcf", "470.lbm"})
        out.push_back(*wl::find_spec2006(name));
    return out;
}

sweep bench_sweep()
{
    sweep s;
    s.add_configs(bench_configs())
        .add_workloads(bench_workloads())
        .instructions(2000)
        .warmup(300)
        .base_seed(17);
    return s;
}

constexpr std::size_t k_jobs = 6;

/// Invoke run_app the way a bench main() does, with the shared sweep.
int launch(const std::vector<std::string>& extra_args)
{
    std::vector<std::string> args = {"exp_fault_test", "--instructions",
                                     "2000",           "--warmup",
                                     "300",            "--seed",
                                     "17",             "--quiet"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<const char*> argv;
    for (const auto& a : args)
        argv.push_back(a.c_str());
    return run_app(int(argv.size()), argv.data(), bench_configs(),
                   bench_workloads(), nullptr);
}

std::vector<decoded_run> read_rows(const std::string& path)
{
    std::vector<decoded_run> rows;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto decoded = decode_json_line(line);
        EXPECT_TRUE(decoded.has_value()) << path << ": " << line;
        if (decoded)
            rows.push_back(*decoded);
    }
    return rows;
}

std::string read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void expect_rows_match(const std::vector<decoded_run>& a,
                       const std::vector<decoded_run>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].key == b[i].key) << "row " << i;
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].instructions_requested, b[i].instructions_requested);
        EXPECT_EQ(a[i].warmup, b[i].warmup);
        expect_sim_fields_identical(a[i].result, b[i].result);
    }
}

// --------------------------------------------------------------------------
// fault_plan spec grammar.
// --------------------------------------------------------------------------

TEST(fault_plan_spec, parses_every_action)
{
    const auto t = fault_plan::parse("throw:7");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->action, fault_plan::kind::throw_error);
    EXPECT_EQ(t->flat, 7u);
    EXPECT_EQ(t->attempts, 1u);

    const auto t2 = fault_plan::parse("throw:3:4");
    ASSERT_TRUE(t2.has_value());
    EXPECT_EQ(t2->attempts, 4u);

    const auto s = fault_plan::parse("stall:2:0.5");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->action, fault_plan::kind::stall);
    EXPECT_EQ(s->flat, 2u);
    EXPECT_EQ(s->stall_seconds, 0.5);

    const auto e = fault_plan::parse("exit:5");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->action, fault_plan::kind::hard_exit);
    EXPECT_EQ(e->exit_code, 137);
    EXPECT_EQ(fault_plan::parse("exit:5:9")->exit_code, 9);
}

TEST(fault_plan_spec, rejects_malformed_specs)
{
    for (const char* bad :
         {"", "throw", "throw:", "throw:x", "throw:1:0", "stall:1",
          "stall:1:-2", "stall:1:abc", "exit:1:999", "explode:1", "throw:1:2:3"})
        EXPECT_FALSE(fault_plan::parse(bad).has_value()) << bad;
}

// --------------------------------------------------------------------------
// Fault isolation: a throwing job becomes a row, not a dead sweep.
// --------------------------------------------------------------------------

TEST(fault_isolation, throwing_job_becomes_failed_row_and_others_complete)
{
    const auto plan = fault_plan::parse("throw:2:99"); // throws every attempt
    ASSERT_TRUE(plan.has_value());
    run_options serial;
    serial.threads = 1;
    serial.fault = &*plan;
    const report a = run_sweep(bench_sweep(), serial);

    ASSERT_EQ(a.results.size(), k_jobs);
    for (std::size_t i = 0; i < k_jobs; ++i) {
        if (i == 2) {
            EXPECT_EQ(a.results[i].status, hier::run_status::failed);
            EXPECT_NE(a.results[i].error.find("injected fault: job 2"),
                      std::string::npos);
            // The failure row still names its coordinates for the report.
            EXPECT_EQ(a.results[i].config_name, a.jobs[i].config.name);
            EXPECT_EQ(a.results[i].workload_name, a.jobs[i].workload.name);
            EXPECT_EQ(a.results[i].instructions, 0u);
        } else {
            EXPECT_EQ(a.results[i].status, hier::run_status::ok);
            EXPECT_TRUE(a.results[i].error.empty());
            EXPECT_GT(a.results[i].instructions, 0u);
        }
    }
    EXPECT_EQ(count_failures(a), 1u);

    // Failure rows obey the determinism contract too: serial and parallel
    // sweeps agree on every field, including the failed slot.
    run_options par = serial;
    par.threads = 8;
    const report b = run_sweep(bench_sweep(), par);
    for (std::size_t i = 0; i < k_jobs; ++i)
        expect_sim_fields_identical(a.results[i], b.results[i]);
}

TEST(fault_isolation, retry_success_is_bit_identical_to_clean_run)
{
    run_options clean_opt;
    clean_opt.threads = 1;
    const report clean = run_sweep(bench_sweep(), clean_opt);

    // The fault hits attempt 0 only; --retries 1 re-runs job 2 from the
    // same rng::split seed, so the retried row must be bit-identical to
    // the clean run's.
    const auto plan = fault_plan::parse("throw:2:1");
    ASSERT_TRUE(plan.has_value());
    run_options opt;
    opt.threads = 1;
    opt.fault = &*plan;
    opt.job_retries = 1;
    const report retried = run_sweep(bench_sweep(), opt);

    ASSERT_EQ(retried.results.size(), k_jobs);
    for (std::size_t i = 0; i < k_jobs; ++i) {
        EXPECT_EQ(retried.results[i].status, hier::run_status::ok);
        expect_sim_fields_identical(clean.results[i], retried.results[i]);
    }
}

// --------------------------------------------------------------------------
// Resume scan semantics (no process killing yet).
// --------------------------------------------------------------------------

TEST(resume_scan, failed_rows_rerun_and_ok_rows_are_reused)
{
    const std::string path =
        ::testing::TempDir() + "resume_scan_failed_rows.jsonl";
    const sweep s = bench_sweep();
    const std::vector<job> jobs = s.build();
    {
        std::ofstream out(path, std::ios::trunc);
        for (const job& j : jobs) {
            hier::run_result r;
            r.config_name = j.config.name;
            r.workload_name = j.workload.name;
            if (j.key.flat == 2) {
                r.status = hier::run_status::failed;
                r.error = "boom";
            }
            out << encode_json_line(j, r) << "\n";
        }
    }
    app_options opt;
    opt.json_path = path;
    resume_scan scan;
    ASSERT_TRUE(scan_resume_file(opt, s, scan));
    EXPECT_EQ(scan.rows, k_jobs);
    EXPECT_EQ(scan.rerun_failed, 1u);
    EXPECT_FALSE(scan.truncated_tail);
    EXPECT_EQ(scan.completed.size(), k_jobs - 1);
    EXPECT_EQ(scan.completed.count(2), 0u); // failed: must re-run
}

// --------------------------------------------------------------------------
// Kill-and-resume: a hard-killed shard converges after --resume.
// (fork()-based — keep these before any detached-thread test.)
// --------------------------------------------------------------------------

class kill_and_resume : public ::testing::TestWithParam<int> {};

TEST_P(kill_and_resume, crashed_sweep_resumes_to_clean_content)
{
    const std::string threads = std::to_string(GetParam());
    const std::string dir = ::testing::TempDir();
    const std::string clean_path =
        dir + "clean_t" + threads + ".jsonl";
    const std::string crash_path =
        dir + "crash_t" + threads + ".jsonl";
    std::remove(clean_path.c_str());
    std::remove(crash_path.c_str());

    ASSERT_EQ(launch({"--threads", threads, "--json", clean_path}), exit_ok);
    const auto clean_rows = read_rows(clean_path);
    ASSERT_EQ(clean_rows.size(), k_jobs);

    // Hard-kill the sweep at job 3 in a child process. --durable 1 makes
    // every already-emitted row durable before the _Exit(137).
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        launch({"--threads", threads, "--json", crash_path, "--durable", "1",
                "--fault", "exit:3"});
        std::_Exit(42); // not reached: the fault exits with 137
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), 137);

    // The crash left a strict prefix: job 3 never finished, so the
    // in-order cursor can have emitted at most rows 0..2. (Count newlines
    // rather than decoding — a torn trailing line is legitimate here.)
    const std::string partial = read_file(crash_path);
    std::size_t partial_lines = 0;
    for (const char c : partial)
        partial_lines += c == '\n';
    EXPECT_LE(partial_lines, 3u);

    ASSERT_EQ(launch({"--threads", threads, "--json", crash_path,
                      "--resume"}),
              exit_ok);
    expect_rows_match(read_rows(crash_path), clean_rows);

    // Resuming a complete file is a no-op: every job is skipped_resumed
    // and the bytes do not change at all.
    const std::string before = read_file(crash_path);
    ASSERT_EQ(launch({"--threads", threads, "--json", crash_path,
                      "--resume"}),
              exit_ok);
    EXPECT_EQ(read_file(crash_path), before);
}

INSTANTIATE_TEST_SUITE_P(threads, kill_and_resume, ::testing::Values(1, 8));

TEST(kill_and_resume_edge, torn_trailing_line_is_truncated_and_rerun)
{
    const std::string dir = ::testing::TempDir();
    const std::string clean_path = dir + "torn_clean.jsonl";
    const std::string torn_path = dir + "torn.jsonl";
    std::remove(clean_path.c_str());

    ASSERT_EQ(launch({"--threads", "1", "--json", clean_path}), exit_ok);
    const std::string clean = read_file(clean_path);

    // Tear the file mid-way through its final line, as a kill during the
    // final write(2) would.
    const std::size_t last_line =
        clean.rfind('\n', clean.size() - 2) + 1;
    const std::size_t cut = last_line + (clean.size() - 1 - last_line) / 2;
    {
        std::ofstream out(torn_path, std::ios::trunc | std::ios::binary);
        out << clean.substr(0, cut);
    }

    ASSERT_EQ(launch({"--threads", "1", "--json", torn_path, "--resume"}),
              exit_ok);
    expect_rows_match(read_rows(torn_path), read_rows(clean_path));
}

TEST(kill_and_resume_edge, corrupt_mid_file_refuses_to_resume)
{
    const std::string dir = ::testing::TempDir();
    const std::string clean_path = dir + "corrupt_clean.jsonl";
    const std::string bad_path = dir + "corrupt.jsonl";
    std::remove(clean_path.c_str());

    ASSERT_EQ(launch({"--threads", "1", "--json", clean_path}), exit_ok);
    std::string content = read_file(clean_path);
    // Mangle the *second* line: a malformed row that is not the trailing
    // line means corruption, not a torn tail.
    const std::size_t first_nl = content.find('\n');
    content.replace(first_nl + 1, 10, "<garbage!>");
    {
        std::ofstream out(bad_path, std::ios::trunc | std::ios::binary);
        out << content;
    }
    EXPECT_EQ(launch({"--threads", "1", "--json", bad_path, "--resume"}),
              exit_cli_error);
}

TEST(kill_and_resume_edge, mismatched_sweep_refuses_to_resume)
{
    const std::string path = ::testing::TempDir() + "mismatch.jsonl";
    std::remove(path.c_str());
    ASSERT_EQ(launch({"--threads", "1", "--json", path}), exit_ok);

    // Same file, different base seed: every derived seed differs, so the
    // file belongs to a different experiment. Resume must refuse rather
    // than silently mix the two.
    std::vector<std::string> args = {"exp_fault_test", "--instructions",
                                     "2000",           "--warmup",
                                     "300",            "--seed",
                                     "18",             "--quiet",
                                     "--threads",      "1",
                                     "--json",         path,
                                     "--resume"};
    std::vector<const char*> argv;
    for (const auto& a : args)
        argv.push_back(a.c_str());
    EXPECT_EQ(run_app(int(argv.size()), argv.data(), bench_configs(),
                      bench_workloads(), nullptr),
              exit_cli_error);
}

TEST(kill_and_resume_edge, resume_without_a_json_file_is_a_cli_error)
{
    EXPECT_EQ(launch({"--threads", "1", "--resume"}), exit_cli_error);
}

TEST(exit_codes, job_failure_exits_1_and_cli_error_exits_2)
{
    const std::string path = ::testing::TempDir() + "exit_codes.jsonl";
    std::remove(path.c_str());
    EXPECT_EQ(launch({"--threads", "1", "--json", path, "--fault",
                      "throw:0:99"}),
              exit_job_failure);
    EXPECT_EQ(launch({"--threads", "1", "--shard", "banana"}),
              exit_cli_error);

    // The failed row is on disk; --resume re-runs exactly that job and
    // the sweep then converges to a fully-ok file.
    ASSERT_EQ(launch({"--threads", "1", "--json", path, "--resume"}),
              exit_ok);
    const auto rows = read_rows(path);
    // File history: 6 rows from the failed run + 1 corrected row for job 0.
    ASSERT_EQ(rows.size(), k_jobs + 1);
    EXPECT_EQ(rows.front().result.status, hier::run_status::failed);
    EXPECT_EQ(rows.back().key.flat, 0u);
    EXPECT_EQ(rows.back().result.status, hier::run_status::ok);
}

// --------------------------------------------------------------------------
// Timeouts and bounded pool shutdown (these abandon detached threads:
// keep them AFTER every fork()-based test above).
// --------------------------------------------------------------------------

TEST(timeouts, stalled_job_times_out_and_others_complete)
{
    const auto plan = fault_plan::parse("stall:2:5");
    ASSERT_TRUE(plan.has_value());
    run_options opt;
    opt.threads = 1;
    opt.fault = &*plan;
    opt.job_timeout_seconds = 0.2;
    const report rep = run_sweep(bench_sweep(), opt);

    ASSERT_EQ(rep.results.size(), k_jobs);
    for (std::size_t i = 0; i < k_jobs; ++i) {
        if (i == 2) {
            EXPECT_EQ(rep.results[i].status, hier::run_status::timed_out);
            EXPECT_NE(rep.results[i].error.find("soft timeout"),
                      std::string::npos);
        } else {
            EXPECT_EQ(rep.results[i].status, hier::run_status::ok);
        }
    }
    EXPECT_EQ(count_failures(rep), 1u);
}

TEST(pool_shutdown, bounded_shutdown_abandons_a_stuck_worker)
{
    pool p(2);
    std::atomic<bool> fast_done{false};
    p.submit([] {
        std::this_thread::sleep_for(std::chrono::seconds(5)); // "stuck"
    });
    p.submit([&] { fast_done = true; });

    // Give both workers time to pick their tasks up.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::size_t abandoned = p.shutdown(0.2);
    EXPECT_EQ(abandoned, 1u);
    EXPECT_TRUE(fast_done);
    // Idempotent: a second shutdown (and the destructor) are no-ops.
    EXPECT_EQ(p.shutdown(0.2), 0u);
}

} // namespace
} // namespace lnuca::exp
