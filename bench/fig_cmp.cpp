// CMP scaling: cores x shared-fabric backends (conventional L2, L-NUCA,
// D-NUCA), reporting per-core IPC and multiprogrammed weighted speedup
// against each backend's single-core baseline.
//
// The sweep runs every (backend, cores) preset over a 4-proxy mix set
// through the exp runner. run_result::weighted_speedup is filled by a
// row hook *during* the sweep: the cores=1 baseline of a backend always
// has a lower flat index than its CMP rows, so by the time a CMP row is
// emitted (in flat order) its baseline is final — the JSON-lines/CSV
// trajectories carry WS while keeping the runner's streaming crash
// safety (--resume works on sharded fig_cmp sweeps).
#include "src/lnuca.h"

#include <cstdio>

using namespace lnuca;

namespace {

constexpr unsigned k_core_counts[] = {1, 2, 4};

std::vector<wl::workload_profile> cmp_workloads()
{
    // Two integer and two floating-point proxies spanning cache-friendly
    // to memory-bound behaviour.
    std::vector<wl::workload_profile> out;
    for (const char* name :
         {"456.hmmer", "429.mcf", "433.milc", "470.lbm"})
        if (const auto profile = wl::find_spec2006(name))
            out.push_back(*profile);
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const exp::app_options opt = exp::parse_app_options(args);
    if (opt.cli_error) {
        std::fprintf(stderr, "%s\n", opt.cli_error_text.c_str());
        return exp::exit_cli_error;
    }

    // --manifest: the manifest's expanded configs replace the preset grid;
    // its baseline_config map then drives the WS hook instead of the
    // fixed per-backend stride.
    std::optional<exp::manifest> man;
    if (!opt.manifest_path.empty()) {
        std::string manifest_error;
        man = exp::load_manifest(opt.manifest_path, &manifest_error);
        if (!man) {
            std::fprintf(stderr, "%s\n", manifest_error.c_str());
            return exp::exit_cli_error;
        }
    }

    std::vector<hier::system_config> configs;
    std::vector<std::string> backend_names;
    if (man) {
        configs = man->configs;
    } else {
        for (const auto& base :
             {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2),
              hier::presets::lnuca_l3(3), hier::presets::lnuca_l3(4),
              hier::presets::dnuca_4x8()}) {
            backend_names.push_back(base.name);
            for (const unsigned cores : k_core_counts)
                configs.push_back(
                    cores == 1 ? base : hier::presets::cmp(base, cores));
        }
        for (auto& config : configs) {
            config.engine_mode = opt.engine_mode;
            config.sampling = opt.sampling;
        }
    }
    const std::size_t per_backend = std::size(k_core_counts);

    exp::sweep s;
    s.add_configs(configs)
        .add_workloads(man ? man->workloads
                           : (opt.workload_override.empty()
                                  ? cmp_workloads()
                                  : opt.workload_override))
        .replicates(man ? man->replicates : opt.replicates)
        .instructions(man ? man->instructions : opt.instructions)
        .warmup(man ? man->warmup : opt.warmup)
        .base_seed(man ? man->base_seed : opt.seed)
        .manifest_hash(man ? man->hash : 0)
        .shard(opt.shard_index, opt.shard_count);

    exp::resume_scan scan;
    if (opt.resume && !exp::scan_resume_file(opt, s, scan))
        return exp::exit_cli_error;
    if (opt.resume && !opt.quiet)
        std::fprintf(stderr,
                     "resume: %zu rows on disk, %zu reusable, %zu failed "
                     "rows will re-run%s\n",
                     scan.rows, scan.completed.size(), scan.rerun_failed,
                     scan.truncated_tail ? "; torn trailing line removed"
                                         : "");

    if (!exp::setup_checkpoints(opt))
        return exp::exit_cli_error;

    exp::sink_set sinks = exp::make_sinks(opt, !opt.quiet);
    if (!sinks.ok)
        return exp::exit_cli_error;

    // Weighted speedup, filled in-stream: each CMP row against its
    // backend's cores=1 baseline on the same workload/replicate. Sharded
    // runs may lack the baseline cell; those rows keep WS = 0. Resumed
    // rows already carry the WS computed when they were first written.
    bool missing_baseline = false;
    exp::run_options ro =
        exp::make_run_options(opt, opt.resume ? &scan : nullptr);
    ro.row_hook = [&](const exp::job& j, hier::run_result& r,
                      const exp::report& rep) {
        if (r.status != hier::run_status::ok)
            return;
        if (configs[j.key.config].cores <= 1)
            return;
        std::size_t base_config;
        if (man) {
            const auto baseline = man->baseline_config[j.key.config];
            if (!baseline) { // no cores=1 point on these axis coordinates
                missing_baseline = true;
                return;
            }
            base_config = *baseline;
        } else {
            base_config = (j.key.config / per_backend) * per_backend;
        }
        const hier::run_result* base =
            rep.find(base_config, j.key.workload, j.key.replicate);
        if (base == nullptr || (base->status != hier::run_status::ok &&
                                base->status !=
                                    hier::run_status::skipped_resumed)) {
            missing_baseline = true;
            return;
        }
        r.weighted_speedup = hier::weighted_speedup(r, *base);
    };

    const exp::report rep = exp::run_sweep(s, ro, sinks.sinks);
    if (missing_baseline)
        std::fprintf(stderr,
                     "fig_cmp: some cores=1 baseline cells fell outside "
                     "this shard or failed; their rows carry "
                     "weighted_speedup=0\n");
    if (const int rc = exp::finish_sweep(rep); rc >= 0)
        return rc;
    if (exp::report_failures(rep) > 0)
        return exp::exit_job_failure;

    if (opt.quiet || opt.shard_count > 1 || man) {
        if (opt.shard_count > 1)
            std::printf("shard %zu/%zu: summary tables suppressed - merge "
                        "the per-shard JSON-lines outputs\n",
                        opt.shard_index, opt.shard_count);
        // Manifest mode: the backend x cores grid below assumes the
        // bench's own preset layout; query the results store instead.
        return exp::exit_ok;
    }

    // Summary: per backend x core count, harmonic-mean IPC over the mix
    // set, mean per-core IPC, and mean weighted speedup.
    const std::size_t workload_count = rep.workload_count;
    text_table t("CMP scaling: cores x shared-fabric backend");
    t.set_header({"backend", "cores", "HM IPC", "mean IPC/core",
                  "weighted speedup", "peer-L1 loads"});
    for (std::size_t b = 0; b < backend_names.size(); ++b) {
        for (std::size_t k = 0; k < per_backend; ++k) {
            const std::size_t c = b * per_backend + k;
            std::vector<double> ipcs;
            double per_core_sum = 0.0, ws_sum = 0.0;
            std::uint64_t peer_loads = 0;
            std::size_t rows = 0;
            for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
                const exp::job& j = rep.jobs[i];
                if (j.key.config != c || j.key.replicate != 0)
                    continue;
                const hier::run_result& r = rep.results[i];
                ipcs.push_back(r.ipc);
                double pc = r.ipc;
                if (!r.per_core_ipc.empty()) {
                    pc = 0.0;
                    for (const double v : r.per_core_ipc)
                        pc += v;
                    pc /= double(r.per_core_ipc.size());
                }
                per_core_sum += pc;
                ws_sum += r.weighted_speedup;
                peer_loads += r.loads_peer;
                ++rows;
            }
            if (rows == 0)
                continue;
            const unsigned cores = k_core_counts[k];
            t.add_row({backend_names[b], std::to_string(cores),
                       text_table::num(harmonic_mean(ipcs), 3),
                       text_table::num(per_core_sum / double(rows), 3),
                       cores == 1 ? "1.00 (def)"
                                  : text_table::num(ws_sum / double(rows), 2),
                       std::to_string(peer_loads)});
        }
    }
    t.print();

    // Per-workload weighted speedup at the largest core count.
    text_table d("Weighted speedup per workload (4 cores)");
    std::vector<std::string> header{"backend"};
    for (std::size_t w = 0; w < workload_count; ++w)
        if (const auto* r = rep.find(0, w))
            header.push_back(r->workload_name);
    d.set_header(std::move(header));
    for (std::size_t b = 0; b < backend_names.size(); ++b) {
        const std::size_t c = b * per_backend + (per_backend - 1);
        std::vector<std::string> row{backend_names[b]};
        for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
            const exp::job& j = rep.jobs[i];
            if (j.key.config == c && j.key.replicate == 0)
                row.push_back(
                    text_table::num(rep.results[i].weighted_speedup, 2));
        }
        d.add_row(std::move(row));
    }
    d.print();
    return exp::exit_ok;
}
