// Shared helpers for the table/figure bench binaries: command-line run
// length overrides, suite matrices, and group (Int/FP) aggregation.
#pragma once

#include "src/lnuca.h"

#include <string>
#include <vector>

namespace lnuca::bench {

struct run_options {
    std::uint64_t instructions = hier::default_instructions;
    std::uint64_t warmup = hier::default_warmup;
    std::uint64_t seed = 1;
};

inline run_options parse_options(int argc, char** argv)
{
    const cli_args args(argc, argv);
    run_options opt;
    opt.instructions = args.get_u64("instructions", opt.instructions);
    opt.warmup = args.get_u64("warmup", opt.warmup);
    opt.seed = args.get_u64("seed", opt.seed);
    return opt;
}

/// Harmonic-mean IPC over a workload group (the paper's aggregation).
inline double group_ipc(const std::vector<hier::run_result>& results, bool fp)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(r.ipc);
    return harmonic_mean(values);
}

/// Arithmetic mean of a per-benchmark metric over a group.
template <typename Fn>
double group_mean(const std::vector<hier::run_result>& results, bool fp, Fn fn)
{
    std::vector<double> values;
    for (const auto& r : results)
        if (r.floating_point == fp)
            values.push_back(fn(r));
    return arithmetic_mean(values);
}

/// Total energy summed over a group (J).
inline double group_energy(const std::vector<hier::run_result>& results, bool fp)
{
    double total = 0;
    for (const auto& r : results)
        if (r.floating_point == fp)
            total += r.energy.total();
    return total;
}

} // namespace lnuca::bench
