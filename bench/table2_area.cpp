// Table II: areas of the conventional L1+L2 against the L-NUCA
// configurations, including the network area share.
#include "src/lnuca.h"

using namespace lnuca;

int main(int, char**)
{
    text_table t("Table II: conventional and L-NUCA areas (minicacti, 32nm)");
    t.set_header({"config", "L1 (mm2)", "storage (mm2)", "network (mm2)",
                  "total (mm2)", "network %", "vs L2-256KB"});

    const auto conventional = power::conventional_l1_l2_area();
    auto add = [&](const std::string& name, const power::area_report& r) {
        t.add_row({name, text_table::num(r.l1_mm2, 3),
                   text_table::num(r.storage_mm2, 3),
                   text_table::num(r.network_mm2, 3),
                   text_table::num(r.total(), 3),
                   text_table::pct(r.network_percent(), 2),
                   text_table::pct(100.0 * (r.total() / conventional.total() - 1.0),
                                   1)});
    };

    add("L2-256KB", conventional);
    for (unsigned levels = 2; levels <= 4; ++levels)
        add(hier::lnuca_config_name(levels), power::lnuca_area(levels));
    t.print();

    std::printf("Paper reference (Table II):\n"
                "  L2-256KB 0.91 mm2 | LN2-72KB 0.46 (14.01%% net) | "
                "LN3-144KB 0.86 (18.8%% net) | LN4-248KB 1.59 (19.02%% net)\n"
                "  LN3-144KB saves 5.3%% of area versus L2-256KB.\n");

    // Fig. 5 area discussion: LN2 fabric as a fraction of the D-NUCA.
    const auto ln2 = power::lnuca_area(2);
    const double dnuca_mm2 =
        32 * power::dnuca_bank_area_mm2() + 40 * power::vc_router_area_mm2();
    std::printf("\nLN2 fabric on top of an 8MB D-NUCA: +%.2f mm2 over %.1f mm2 "
                "(+%.2f%%; paper: +1.2%%)\n",
                ln2.storage_mm2 + ln2.network_mm2, dnuca_mm2,
                100.0 * (ln2.storage_mm2 + ln2.network_mm2) / dnuca_mm2);
    return 0;
}
