// Extension ablation: sensitivity of the fabric to the U/D link-buffer
// depth (the paper fixes two entries to cover the On/Off round trip).
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    std::vector<hier::system_config> configs;
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        hier::system_config cfg = hier::presets::lnuca_l3(3);
        cfg.name = "LN3, " + std::to_string(depth) + "-entry buffers";
        cfg.fabric.tile.buffer_depth = depth;
        configs.push_back(cfg);
    }

    return exp::run_app(
        argc, argv, std::move(configs), wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            text_table t("U/D buffer depth sensitivity (LN3)");
            t.set_header({"config", "IPC Int", "IPC FP", "avg/min transport",
                          "restarts"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto row = rep.row(c);
                double restarts = 0, actual = 0, minimum = 0;
                for (const auto& r : row) {
                    restarts += double(r.search_restarts);
                    actual += double(r.transport_actual);
                    minimum += double(r.transport_min);
                }
                t.add_row({row.front().config_name,
                           text_table::num(exp::group_ipc(row, false), 3),
                           text_table::num(exp::group_ipc(row, true), 3),
                           text_table::num(safe_ratio(actual, minimum, 1.0), 4),
                           text_table::num(restarts, 0)});
            }
            t.print();

            std::printf(
                "Expectation: two entries (the paper's choice, covering the "
                "two-cycle On/Off round trip) already behave like deeper "
                "buffers; a single entry throttles transport.\n");
        });
}
