// Extension ablation: sensitivity of the fabric to the U/D link-buffer
// depth (the paper fixes two entries to cover the On/Off round trip).
#include "bench/bench_util.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    const auto opt = bench::parse_options(argc, argv);

    std::vector<hier::system_config> configs;
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        hier::system_config cfg = hier::presets::lnuca_l3(3);
        cfg.name = "LN3, " + std::to_string(depth) + "-entry buffers";
        cfg.fabric.tile.buffer_depth = depth;
        configs.push_back(cfg);
    }

    const auto& suite = wl::spec2006_suite();
    const auto results =
        hier::run_matrix(configs, suite, opt.instructions, opt.warmup, opt.seed);

    text_table t("U/D buffer depth sensitivity (LN3)");
    t.set_header({"config", "IPC Int", "IPC FP", "avg/min transport",
                  "restarts"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double restarts = 0, actual = 0, minimum = 0;
        for (const auto& r : results[c]) {
            restarts += double(r.search_restarts);
            actual += double(r.transport_actual);
            minimum += double(r.transport_min);
        }
        t.add_row({configs[c].name,
                   text_table::num(bench::group_ipc(results[c], false), 3),
                   text_table::num(bench::group_ipc(results[c], true), 3),
                   text_table::num(safe_ratio(actual, minimum, 1.0), 4),
                   text_table::num(restarts, 0)});
    }
    t.print();

    std::printf("Expectation: two entries (the paper's choice, covering the "
                "two-cycle On/Off round trip) already behave like deeper "
                "buffers; a single entry throttles transport.\n");
    return 0;
}
