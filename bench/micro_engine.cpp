// google-benchmark comparison of the dense and idle-skip engine schedules
// on whole-system simulation, at the two extremes that bound real sweeps:
//
//   idle-heavy  a serialised pointer chase over a 64MB footprint on the
//               conventional L1/L2/L3 hierarchy - each load misses to main
//               memory with the core asleep for most of the ~260-cycle
//               round trip (>90% of cycles are skippable);
//   saturated   a cache-resident integer workload (456.hmmer proxy) where
//               the core acts nearly every cycle, measuring the scheduling
//               overhead idle-skip adds when there is nothing to skip.
//
// CI runs this binary with --benchmark_out=BENCH_engine.json to append the
// first engine-performance point to the perf trajectory.
#include "src/lnuca.h"

#include <benchmark/benchmark.h>

using namespace lnuca;

namespace {

/// Low-MLP, memory-resident profile: dependent loads uniformly spread over
/// 2M distinct 32B blocks (64MB), far beyond the 8MB L3.
wl::workload_profile idle_heavy_profile()
{
    wl::workload_profile w;
    w.name = "pointer-chase-64MB";
    w.mix = {0.35, 0.05, 0.12, 0.40, 0.02, 0.03, 0.02, 0.01};
    w.p_new_block = 0.05;
    w.footprint_blocks = 1ull << 21;
    w.reuse = {{0.95, 2.0e6}};
    w.sequential_run = 0.0;
    w.mean_dep_distance = 2.0;
    w.pointer_chase = 0.95;
    return w;
}

void bm_engine(benchmark::State& state, const wl::workload_profile& workload,
               sim::schedule_mode mode)
{
    hier::system_config config = hier::presets::l2_256kb();
    config.engine_mode = mode;

    std::uint64_t instructions = 0, executed = 0, skipped = 0;
    for (auto _ : state) {
        state.PauseTiming();
        hier::system sys(config, workload, 1);
        state.ResumeTiming();
        const auto r = sys.run(20000, 2000);
        instructions += r.instructions;
        executed += sys.engine().cycles_executed();
        skipped += sys.engine().cycles_skipped();
    }
    state.SetItemsProcessed(std::int64_t(instructions));
    state.counters["skipped_pct"] =
        executed + skipped == 0
            ? 0.0
            : 100.0 * double(skipped) / double(executed + skipped);
}

void bm_idle_heavy_dense(benchmark::State& s)
{
    bm_engine(s, idle_heavy_profile(), sim::schedule_mode::dense);
}
void bm_idle_heavy_skip(benchmark::State& s)
{
    bm_engine(s, idle_heavy_profile(), sim::schedule_mode::idle_skip);
}
void bm_saturated_dense(benchmark::State& s)
{
    bm_engine(s, *wl::find_spec2006("456.hmmer"), sim::schedule_mode::dense);
}
void bm_saturated_skip(benchmark::State& s)
{
    bm_engine(s, *wl::find_spec2006("456.hmmer"), sim::schedule_mode::idle_skip);
}

BENCHMARK(bm_idle_heavy_dense)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_idle_heavy_skip)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_saturated_dense)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_saturated_skip)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
