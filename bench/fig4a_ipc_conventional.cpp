// Fig. 4(a): IPC harmonic mean (Integer and Floating Point) for the
// conventional baseline and the three L-NUCA configurations.
#include "bench/bench_util.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    const auto opt = bench::parse_options(argc, argv);

    std::vector<hier::system_config> configs = {
        hier::presets::l2_256kb(),
        hier::presets::lnuca_l3(2),
        hier::presets::lnuca_l3(3),
        hier::presets::lnuca_l3(4),
    };
    const auto& suite = wl::spec2006_suite();
    const auto results =
        hier::run_matrix(configs, suite, opt.instructions, opt.warmup, opt.seed);

    const double base_int = bench::group_ipc(results[0], false);
    const double base_fp = bench::group_ipc(results[0], true);

    text_table t("Fig. 4(a): IPC harmonic mean, conventional vs L-NUCA");
    t.set_header({"config", "IPC Int", "IPC FP", "gain Int", "gain FP"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const double i = bench::group_ipc(results[c], false);
        const double f = bench::group_ipc(results[c], true);
        t.add_row({configs[c].name, text_table::num(i, 3), text_table::num(f, 3),
                   text_table::pct(100.0 * (i / base_int - 1.0)),
                   text_table::pct(100.0 * (f / base_fp - 1.0))});
    }
    t.print();

    std::printf("Paper reference (Fig. 4(a)): gains over L2-256KB\n"
                "  LN2-72KB : Int +5.4%%  FP +14.3%%\n"
                "  LN3-144KB: Int ~+6%%   FP ~+15%%\n"
                "  LN4-248KB: Int +6.22%% FP +15.4%%\n");

    // Per-benchmark detail for the appendix-style view.
    text_table d("Per-benchmark IPC");
    std::vector<std::string> header{"benchmark"};
    for (const auto& c : configs)
        header.push_back(c.name);
    d.set_header(std::move(header));
    for (std::size_t w = 0; w < suite.size(); ++w) {
        std::vector<std::string> row{suite[w].name};
        for (std::size_t c = 0; c < configs.size(); ++c)
            row.push_back(text_table::num(results[c][w].ipc, 3));
        d.add_row(std::move(row));
    }
    d.print();
    return 0;
}
