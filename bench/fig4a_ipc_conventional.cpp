// Fig. 4(a): IPC harmonic mean (Integer and Floating Point) for the
// conventional baseline and the three L-NUCA configurations.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    return exp::run_app(
        argc, argv,
        {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2),
         hier::presets::lnuca_l3(3), hier::presets::lnuca_l3(4)},
        wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            const auto baseline = rep.row(0);
            const double base_int = exp::group_ipc(baseline, false);
            const double base_fp = exp::group_ipc(baseline, true);

            text_table t("Fig. 4(a): IPC harmonic mean, conventional vs L-NUCA");
            t.set_header({"config", "IPC Int", "IPC FP", "gain Int", "gain FP"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto row = rep.row(c);
                const double i = exp::group_ipc(row, false);
                const double f = exp::group_ipc(row, true);
                t.add_row({row.front().config_name, text_table::num(i, 3),
                           text_table::num(f, 3),
                           text_table::pct(100.0 * (i / base_int - 1.0)),
                           text_table::pct(100.0 * (f / base_fp - 1.0))});
            }
            t.print();

            std::printf(
                "Paper reference (Fig. 4(a)): gains over L2-256KB\n"
                "  LN2-72KB : Int +5.4%%  FP +14.3%%\n"
                "  LN3-144KB: Int ~+6%%   FP ~+15%%\n"
                "  LN4-248KB: Int +6.22%% FP +15.4%%\n");

            // Per-benchmark detail for the appendix-style view.
            text_table d("Per-benchmark IPC");
            std::vector<std::string> header{"benchmark"};
            std::vector<std::vector<hier::run_result>> rows;
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                rows.push_back(rep.row(c));
                header.push_back(rows.back().front().config_name);
            }
            d.set_header(std::move(header));
            for (std::size_t w = 0; w < rep.workload_count; ++w) {
                std::vector<std::string> row{rows[0][w].workload_name};
                for (std::size_t c = 0; c < rep.config_count; ++c)
                    row.push_back(text_table::num(rows[c][w].ipc, 3));
                d.add_row(std::move(row));
            }
            d.print();
        });
}
