// Sampled-simulation accuracy/speedup gate and trajectory point.
//
// Runs the fig4a presets (conventional baseline + LN2/LN3/LN4) against two
// stationary synthetic workloads - "mix" (blended reuse across the
// hierarchy's levels) and "stream" (sequential, memory-bound) - once at
// full fidelity with the dense reference schedule and once sampled, then
// reports per-run |IPC error|, CI coverage and wall-clock speedup plus the
// medians, and writes everything to BENCH_sampling.json.
//
// CI gates on the medians: the process exits non-zero when the median
// |IPC error| exceeds --max-error-pct (default 3%) or the median speedup
// falls below --min-speedup (default 5x). This is a plain binary (no
// google-benchmark) so the gate runs everywhere.
//
// A second section gates sampled CMP the same way: cores {2,4} x
// {L2-256KB, LN3} against the dense CMP reference, over both the private
// "mix" lanes and the sharing-heavy scenario:producer_consumer lane set
// (warm MESI must keep directory/permission state exact for the latter to
// estimate well). CMP rows run a shorter per-core budget (--cmp-
// instructions) with a denser window spec (--cmp-sampling) and report
// median_abs_error_pct_cmp / median_speedup_cmp, gated against
// --cmp-max-error-pct / --cmp-min-speedup.
#include "src/lnuca.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace lnuca;

namespace {

/// Blended reuse: mass on every level of the hierarchy (hmmer/mcf-like).
wl::workload_profile mix_profile()
{
    wl::workload_profile w;
    w.name = "mix";
    w.p_new_block = 0.015;
    w.footprint_blocks = 1 << 19;
    w.reuse = {{0.45, 600.0}, {0.25, 6000.0}, {0.15, 60000.0}};
    w.sequential_run = 0.35;
    w.mean_dep_distance = 5.0;
    return w;
}

/// Streaming: long sequential runs marching through a large footprint.
wl::workload_profile stream_profile()
{
    wl::workload_profile w;
    w.name = "stream";
    w.floating_point = true;
    w.mix.load = 0.30;
    w.mix.store = 0.10;
    w.mix.fp_add = 0.12;
    w.mix.fp_mul = 0.08;
    w.mix.int_alu = 0.28;
    w.mix.branch = 0.10;
    w.mix.int_mul = 0.01;
    w.mix.fp_div = 0.01;
    w.p_new_block = 0.20;
    w.footprint_blocks = 1 << 20;
    w.reuse = {{0.60, 64.0}, {0.15, 4000.0}};
    w.sequential_run = 0.85;
    w.mean_dep_distance = 8.0;
    return w;
}

struct sample_point {
    std::string config;
    std::string workload;
    unsigned cores = 1;
    double reference_ipc = 0.0;
    double sampled_ipc = 0.0;
    double ipc_ci95 = 0.0;
    double abs_error_pct = 0.0;
    bool ci_covers_reference = false;
    double reference_seconds = 0.0;
    double sampled_seconds = 0.0;
    double speedup = 0.0;
    std::uint64_t windows = 0;
};

double median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n == 0 ? 0.0
                  : (n % 2 == 1 ? values[n / 2]
                                : 0.5 * (values[n / 2 - 1] + values[n / 2]));
}

double timed_run(const hier::system_config& config,
                 const wl::workload_profile& workload, std::uint64_t instr,
                 std::uint64_t warmup, std::uint64_t seed,
                 hier::run_result& out)
{
    const auto start = std::chrono::steady_clock::now();
    out = hier::run_one(config, workload, instr, warmup, seed);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    // Long runs by design: window-sampling error shrinks as 1/sqrt(windows)
    // and the wall-clock advantage grows with the fast-forward fraction, so
    // the gate measures the regime sampling is for. 16 windows of 6000
    // measured instructions every 625k, each re-warmed by 3000 detailed
    // instructions (validated: ~1% median |IPC error|, >10x median speedup).
    const std::uint64_t instructions = args.get_u64("instructions", 10'000'000);
    const std::uint64_t warmup = args.get_u64("warmup", hier::default_warmup);
    const std::uint64_t seed = args.get_u64("seed", 1);
    const std::string out_path = args.get_string("out", "BENCH_sampling.json");
    const std::string spec =
        args.get_string("sampling", "periodic:6000:625000:3000");
    const double max_error_pct = args.get_double("max-error-pct", 3.0);
    const double min_speedup = args.get_double("min-speedup", 5.0);
    // CMP section: shorter per-core budget (every core retires it, and the
    // dense reference pays cores x the single-core cost) with a
    // proportionally denser window spec (~13 windows).
    const std::uint64_t cmp_instructions =
        args.get_u64("cmp-instructions", 2'000'000);
    const std::string cmp_spec =
        args.get_string("cmp-sampling", "periodic:6000:150000:3000");
    const double cmp_max_error_pct = args.get_double("cmp-max-error-pct", 3.0);
    const double cmp_min_speedup = args.get_double("cmp-min-speedup", 5.0);

    const auto sampling = hier::parse_sampling_spec(spec);
    if (!sampling || !sampling->enabled) {
        std::fprintf(stderr, "invalid --sampling spec '%s'\n", spec.c_str());
        return 2;
    }
    const auto cmp_sampling = hier::parse_sampling_spec(cmp_spec);
    if (!cmp_sampling || !cmp_sampling->enabled) {
        std::fprintf(stderr, "invalid --cmp-sampling spec '%s'\n",
                     cmp_spec.c_str());
        return 2;
    }

    const std::vector<hier::system_config> configs{
        hier::presets::l2_256kb(), hier::presets::lnuca_l3(2),
        hier::presets::lnuca_l3(3), hier::presets::lnuca_l3(4)};
    const std::vector<wl::workload_profile> workloads{mix_profile(),
                                                      stream_profile()};

    std::vector<sample_point> points;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto& base = configs[c];
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const auto& workload = workloads[w];
            sample_point p;
            p.config = base.name;
            p.workload = workload.name;
            // Independent seed lane per cell: every run samples different
            // stream positions, so window-sampling errors decorrelate
            // across rows and the medians are meaningful.
            const std::uint64_t cell_seed = rng::split(seed, c, w, 0);

            hier::system_config reference = base;
            reference.engine_mode = sim::schedule_mode::dense;
            hier::run_result ref;
            p.reference_seconds = timed_run(reference, workload, instructions,
                                            warmup, cell_seed, ref);
            p.reference_ipc = ref.ipc;

            hier::system_config sampled = base; // idle_skip windows
            sampled.sampling = *sampling;
            hier::run_result est;
            p.sampled_seconds = timed_run(sampled, workload, instructions,
                                          warmup, cell_seed, est);
            // The sampled run is short enough for host-scheduling noise to
            // distort its wall clock; repeat once (bit-identical result)
            // and keep the faster time.
            hier::run_result est2;
            p.sampled_seconds = std::min(
                p.sampled_seconds, timed_run(sampled, workload, instructions,
                                             warmup, cell_seed, est2));
            p.sampled_ipc = est.ipc;
            p.ipc_ci95 = est.ipc_ci95;
            p.windows = est.sampled_windows;
            p.abs_error_pct =
                ref.ipc == 0.0
                    ? 0.0
                    : 100.0 * std::abs(est.ipc - ref.ipc) / ref.ipc;
            p.ci_covers_reference = std::abs(est.ipc - ref.ipc) <= est.ipc_ci95;
            p.speedup = p.sampled_seconds > 0.0
                            ? p.reference_seconds / p.sampled_seconds
                            : 0.0;
            points.push_back(p);

            std::printf("%-10s %-7s ref %.3f  sampled %.3f ±%.3f (%2" PRIu64
                        "w)  |err| %5.2f%%  ci %s  speedup %6.1fx\n",
                        p.config.c_str(), p.workload.c_str(), p.reference_ipc,
                        p.sampled_ipc, p.ipc_ci95, p.windows, p.abs_error_pct,
                        p.ci_covers_reference ? "covers" : "MISSES",
                        p.speedup);
        }
    }

    std::vector<double> errors, speedups;
    std::size_t covered = 0;
    for (const auto& p : points) {
        errors.push_back(p.abs_error_pct);
        speedups.push_back(p.speedup);
        covered += p.ci_covers_reference ? 1 : 0;
    }
    const double median_error = median(errors);
    const double median_speedup = median(speedups);
    std::printf("median |IPC error| %.2f%% (gate %.0f%%), median speedup "
                "%.1fx (gate %.0fx), CI covers reference in %zu/%zu runs\n",
                median_error, max_error_pct, median_speedup, min_speedup,
                covered, points.size());

    // --- Sampled CMP: warm MESI fast-forward vs the dense CMP reference. ---
    const std::vector<hier::system_config> cmp_bases{
        hier::presets::l2_256kb(), hier::presets::lnuca_l3(3)};
    const unsigned cmp_core_counts[] = {2, 4};
    std::vector<wl::workload_profile> cmp_workloads{mix_profile()};
    {
        // Sharing-heavy lane set: each core runs its lane of the scenario,
        // so the fast-forward path exercises real invalidation/downgrade
        // traffic between windows.
        auto pc = trace::parse_workload_spec("scenario:producer_consumer");
        if (!pc) {
            std::fprintf(stderr,
                         "scenario:producer_consumer unavailable\n");
            return 2;
        }
        cmp_workloads.push_back(*pc);
    }

    std::vector<sample_point> cmp_points;
    std::size_t cmp_cell = 0;
    for (const auto& base : cmp_bases) {
        for (const unsigned n_cores : cmp_core_counts) {
            const hier::system_config cmp_base =
                hier::presets::cmp(base, n_cores);
            for (const auto& workload : cmp_workloads) {
                sample_point p;
                p.config = cmp_base.name;
                p.workload = workload.name;
                p.cores = n_cores;
                // Seed lanes disjoint from the single-core cells above
                // (plane 1 vs plane 0).
                const std::uint64_t cell_seed =
                    rng::split(seed, cmp_cell++, 0, 1);

                hier::system_config reference = cmp_base;
                reference.engine_mode = sim::schedule_mode::dense;
                hier::run_result ref;
                p.reference_seconds =
                    timed_run(reference, workload, cmp_instructions, warmup,
                              cell_seed, ref);
                p.reference_ipc = ref.ipc;

                hier::system_config sampled = cmp_base; // idle_skip windows
                sampled.sampling = *cmp_sampling;
                hier::run_result est;
                p.sampled_seconds = timed_run(sampled, workload,
                                              cmp_instructions, warmup,
                                              cell_seed, est);
                hier::run_result est2;
                p.sampled_seconds =
                    std::min(p.sampled_seconds,
                             timed_run(sampled, workload, cmp_instructions,
                                       warmup, cell_seed, est2));
                p.sampled_ipc = est.ipc;
                p.ipc_ci95 = est.ipc_ci95;
                p.windows = est.sampled_windows;
                p.abs_error_pct =
                    ref.ipc == 0.0
                        ? 0.0
                        : 100.0 * std::abs(est.ipc - ref.ipc) / ref.ipc;
                p.ci_covers_reference =
                    std::abs(est.ipc - ref.ipc) <= est.ipc_ci95;
                p.speedup = p.sampled_seconds > 0.0
                                ? p.reference_seconds / p.sampled_seconds
                                : 0.0;
                cmp_points.push_back(p);

                std::printf(
                    "%-13s %-17s ref %.3f  sampled %.3f ±%.3f (%2" PRIu64
                    "w)  |err| %5.2f%%  ci %s  speedup %6.1fx\n",
                    p.config.c_str(), p.workload.c_str(), p.reference_ipc,
                    p.sampled_ipc, p.ipc_ci95, p.windows, p.abs_error_pct,
                    p.ci_covers_reference ? "covers" : "MISSES", p.speedup);
            }
        }
    }

    std::vector<double> cmp_errors, cmp_speedups;
    std::size_t cmp_covered = 0;
    for (const auto& p : cmp_points) {
        cmp_errors.push_back(p.abs_error_pct);
        cmp_speedups.push_back(p.speedup);
        cmp_covered += p.ci_covers_reference ? 1 : 0;
    }
    const double median_error_cmp = median(cmp_errors);
    const double median_speedup_cmp = median(cmp_speedups);
    std::printf("CMP: median |IPC error| %.2f%% (gate %.0f%%), median "
                "speedup %.1fx (gate %.0fx), CI covers reference in "
                "%zu/%zu runs\n",
                median_error_cmp, cmp_max_error_pct, median_speedup_cmp,
                cmp_min_speedup, cmp_covered, cmp_points.size());

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    const auto write_run = [&out](const sample_point& p, bool first) {
        out << (first ? "" : ",") << "{\"config\":\"" << p.config
            << "\",\"workload\":\"" << p.workload
            << "\",\"cores\":" << p.cores
            << ",\"reference_ipc\":" << p.reference_ipc
            << ",\"sampled_ipc\":" << p.sampled_ipc
            << ",\"ipc_ci95\":" << p.ipc_ci95
            << ",\"abs_error_pct\":" << p.abs_error_pct
            << ",\"ci_covers_reference\":"
            << (p.ci_covers_reference ? "true" : "false")
            << ",\"reference_seconds\":" << p.reference_seconds
            << ",\"sampled_seconds\":" << p.sampled_seconds
            << ",\"speedup\":" << p.speedup << ",\"windows\":" << p.windows
            << "}";
    };
    out << "{\"sampling\":\"" << spec << "\",\"instructions\":" << instructions
        << ",\"warmup\":" << warmup << ",\"seed\":" << seed
        << ",\"median_abs_error_pct\":" << median_error
        << ",\"median_speedup\":" << median_speedup
        << ",\"ci_covered\":" << covered
        << ",\"cmp_sampling\":\"" << cmp_spec
        << "\",\"cmp_instructions\":" << cmp_instructions
        << ",\"median_abs_error_pct_cmp\":" << median_error_cmp
        << ",\"median_speedup_cmp\":" << median_speedup_cmp
        << ",\"cmp_ci_covered\":" << cmp_covered << ",\"runs\":[";
    for (std::size_t i = 0; i < points.size(); ++i)
        write_run(points[i], i == 0);
    out << "],\"cmp_runs\":[";
    for (std::size_t i = 0; i < cmp_points.size(); ++i)
        write_run(cmp_points[i], i == 0);
    out << "]}\n";

    const bool error_ok = median_error <= max_error_pct;
    const bool speedup_ok = median_speedup >= min_speedup;
    const bool cmp_error_ok = median_error_cmp <= cmp_max_error_pct;
    const bool cmp_speedup_ok = median_speedup_cmp >= cmp_min_speedup;
    if (!error_ok)
        std::fprintf(stderr, "FAIL: median |IPC error| %.2f%% > %.0f%%\n",
                     median_error, max_error_pct);
    if (!speedup_ok)
        std::fprintf(stderr, "FAIL: median speedup %.1fx < %.0fx\n",
                     median_speedup, min_speedup);
    if (!cmp_error_ok)
        std::fprintf(stderr, "FAIL: CMP median |IPC error| %.2f%% > %.0f%%\n",
                     median_error_cmp, cmp_max_error_pct);
    if (!cmp_speedup_ok)
        std::fprintf(stderr, "FAIL: CMP median speedup %.1fx < %.0fx\n",
                     median_speedup_cmp, cmp_min_speedup);
    return error_ok && speedup_ok && cmp_error_ok && cmp_speedup_ok ? 0 : 1;
}
