// Table I: architectural and network parameters, dumped from the presets
// so the configuration used by every other bench is auditable.
#include "src/lnuca.h"

using namespace lnuca;

namespace {

std::string cache_line(const mem::cache_config& c)
{
    return format_size(c.size_bytes) + ", " + std::to_string(c.ways) +
           " way, " + std::to_string(c.block_bytes) + "B block, " +
           std::to_string(c.completion_latency) + "-cycle completion, " +
           std::to_string(c.initiation_interval) + "-cycle initiation, " +
           (c.write_through ? "write-through" : "copy-back") + ", " +
           std::to_string(c.ports) + " port(s)";
}

} // namespace

int main(int, char**)
{
    const auto conventional = hier::presets::l2_256kb();
    const auto lnuca_cfg = hier::presets::lnuca_l3(3);
    const auto dnuca_cfg = hier::presets::dnuca_4x8();
    const auto& core = conventional.core;

    text_table t("Table I: architectural and network parameters");
    t.set_header({"parameter", "value"});
    t.add_row({"fetch/decode width",
               std::to_string(core.fetch_width) + ", up to " +
                   std::to_string(core.max_taken_per_fetch) + " taken branches"});
    t.add_row({"issue width", std::to_string(core.int_mem_issue_width) +
                                  "(INT or MEM)+" +
                                  std::to_string(core.fp_issue_width) + " FP"});
    t.add_row({"commit width", std::to_string(core.commit_width)});
    t.add_row({"ROB/LSQ size", std::to_string(core.rob_size) + "/" +
                                   std::to_string(core.lsq_size)});
    t.add_row({"INT/FP/MEM IW size", std::to_string(core.int_window) + "/" +
                                         std::to_string(core.fp_window) + "/" +
                                         std::to_string(core.mem_window)});
    t.add_row({"store buffer size", std::to_string(core.store_buffer_size)});
    t.add_row({"branch predictor", "bimodal + gshare, 16 bit"});
    t.add_row({"branch mispred. delay", std::to_string(core.mispredict_penalty)});
    t.add_row({"TLB miss latency", std::to_string(core.tlb_miss_latency)});
    t.add_row({"MSHR L1/L2/L3", std::to_string(conventional.l1.mshr_entries) +
                                    "/" +
                                    std::to_string(conventional.l2.mshr_entries) +
                                    "/" +
                                    std::to_string(conventional.l3.mshr_entries)});
    t.add_row({"MSHR secondary misses",
               std::to_string(conventional.l1.mshr_secondary)});
    t.add_row({"L1 cache / r-tile", cache_line(conventional.l1)});
    t.add_row({"L2 cache", cache_line(conventional.l2)});
    t.add_row({"L3 cache", cache_line(conventional.l3)});
    t.add_row({"L-NUCA tile",
               format_size(lnuca_cfg.fabric.tile.size_bytes) + ", " +
                   std::to_string(lnuca_cfg.fabric.tile.ways) + " way, " +
                   std::to_string(lnuca_cfg.fabric.tile.block_bytes) +
                   "B block, 1-cycle completion and initiation"});
    t.add_row({"L-NUCA MSHR", std::to_string(lnuca_cfg.fabric.mshr_entries)});
    t.add_row({"L-NUCA buffers", std::to_string(lnuca_cfg.fabric.tile.buffer_depth) +
                                     " entries per link (physical)"});
    t.add_row({"D-NUCA", format_size(dnuca_cfg.dnuca.bank_bytes) + " banks, " +
                             std::to_string(dnuca_cfg.dnuca.bank_sets) +
                             " sparse sets, " +
                             std::to_string(dnuca_cfg.dnuca.rows) + " rows, " +
                             std::to_string(
                                 dnuca_cfg.dnuca.router.virtual_channels) +
                             " VCs, 1-5 flits/message"});
    t.add_row({"main memory",
               "first chunk " + std::to_string(conventional.memory.first_chunk_latency) +
                   " cycles, " +
                   std::to_string(conventional.memory.inter_chunk_latency) +
                   "-cycle inter chunk, " +
                   std::to_string(conventional.memory.wire_bytes) + "B wires"});
    t.print();
    return 0;
}
