// google-benchmark microbenchmarks: raw throughput of the simulator's
// building blocks (tag array, MSHR file, fabric cycle, mesh cycle, branch
// predictor, workload generation) and of whole-system simulation.
#include "src/lnuca.h"

#include <benchmark/benchmark.h>

using namespace lnuca;

namespace {

void bm_tag_array_lookup(benchmark::State& state)
{
    mem::tag_array tags({32_KiB, 4, 32, "lru", 1});
    rng rng(7);
    for (addr_t a = 0; a < 32_KiB; a += 32)
        tags.install(a, false);
    for (auto _ : state) {
        const addr_t addr = rng.below(64_KiB);
        benchmark::DoNotOptimize(tags.lookup(addr));
    }
}
BENCHMARK(bm_tag_array_lookup);

void bm_mshr_allocate_release(benchmark::State& state)
{
    mem::mshr_file mshrs(16, 4);
    addr_t a = 0;
    for (auto _ : state) {
        mshrs.allocate(a, 0);
        benchmark::DoNotOptimize(mshrs.release(a));
        a += 64;
    }
}
BENCHMARK(bm_mshr_allocate_release);

void bm_branch_predictor(benchmark::State& state)
{
    cpu::combined_predictor predictor;
    rng rng(3);
    for (auto _ : state) {
        const addr_t pc = 0x400000 + 4 * rng.below(4096);
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(predictor.predict(pc));
        predictor.update(pc, taken);
    }
}
BENCHMARK(bm_branch_predictor);

void bm_workload_generation(benchmark::State& state)
{
    auto stream = wl::make_stream(*wl::find_spec2006("429.mcf"), 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream->next());
}
BENCHMARK(bm_workload_generation);

void bm_fabric_idle_cycle(benchmark::State& state)
{
    mem::txn_id_source ids;
    fabric::fabric_config config;
    config.levels = unsigned(state.range(0));
    fabric::lnuca_cache fabric(config, ids);
    cycle_t now = 0;
    for (auto _ : state)
        fabric.tick(now++);
}
BENCHMARK(bm_fabric_idle_cycle)->Arg(2)->Arg(3)->Arg(4);

void bm_mesh_cycle(benchmark::State& state)
{
    noc::mesh_network mesh({4, 4}, 8, 5);
    // Keep a steady trickle of traffic in flight.
    std::uint64_t packet = 1;
    cycle_t now = 0;
    for (auto _ : state) {
        auto& router = mesh.at({0, 0});
        if (router.local_can_accept(0)) {
            noc::flit f;
            f.packet_id = packet++;
            f.dst = {int(packet % 8), int(1 + packet % 4)};
            router.local_inject(0, f);
        }
        for (int x = 0; x < 8; ++x)
            for (int y = 0; y < 5; ++y)
                while (mesh.at({x, y}).local_eject())
                    ;
        mesh.step(now++);
    }
}
BENCHMARK(bm_mesh_cycle);

void bm_system_simulation(benchmark::State& state)
{
    // Whole-system throughput in simulated instructions per wall second.
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        state.PauseTiming();
        hier::system sys(hier::presets::lnuca_l3(3),
                         *wl::find_spec2006("401.bzip2"), 1);
        state.ResumeTiming();
        const auto r = sys.run(20000, 2000);
        instructions += r.instructions;
    }
    state.SetItemsProcessed(std::int64_t(instructions));
}
BENCHMARK(bm_system_simulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
