// Fig. 4(b): total energy normalised to L2-256KB, stacked as
// {dynamic, static L1/r-tile, static L2-or-tiles (RESTT), static L3}.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    return exp::run_app(
        argc, argv,
        {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2),
         hier::presets::lnuca_l3(3), hier::presets::lnuca_l3(4)},
        wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            auto total_breakdown = [&](std::size_t c) {
                power::energy_breakdown sum;
                for (const auto& r : rep.row(c)) {
                    sum.dynamic_j += r.energy.dynamic_j;
                    sum.static_l1_j += r.energy.static_l1_j;
                    sum.static_storage_j += r.energy.static_storage_j;
                    sum.static_l3_j += r.energy.static_l3_j;
                }
                return sum;
            };

            const double base = total_breakdown(0).total();

            text_table t("Fig. 4(b): total energy normalised to L2-256KB");
            t.set_header({"config", "dyn.", "sta. L1-RT", "sta. L2/RESTT",
                          "sta. L3", "total", "saving"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto e = total_breakdown(c);
                t.add_row({rep.row(c).front().config_name,
                           text_table::num(e.dynamic_j / base, 3),
                           text_table::num(e.static_l1_j / base, 3),
                           text_table::num(e.static_storage_j / base, 3),
                           text_table::num(e.static_l3_j / base, 3),
                           text_table::num(e.total() / base, 3),
                           text_table::pct(100.0 * (1.0 - e.total() / base))});
            }
            t.print();

            std::printf(
                "Paper reference (Fig. 4(b)): total-energy savings over "
                "L2-256KB\n"
                "  LN2-72KB 16.5%%, LN3-144KB ~14%%, LN4-248KB 10.5%%; L3 "
                "static dominates; L-NUCA saves ~10%% of static L3 energy "
                "via shorter execution.\n");
        });
}
