// Fig. 4(b): total energy normalised to L2-256KB, stacked as
// {dynamic, static L1/r-tile, static L2-or-tiles (RESTT), static L3}.
#include "bench/bench_util.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    const auto opt = bench::parse_options(argc, argv);

    std::vector<hier::system_config> configs = {
        hier::presets::l2_256kb(),
        hier::presets::lnuca_l3(2),
        hier::presets::lnuca_l3(3),
        hier::presets::lnuca_l3(4),
    };
    const auto& suite = wl::spec2006_suite();
    const auto results =
        hier::run_matrix(configs, suite, opt.instructions, opt.warmup, opt.seed);

    auto total_breakdown = [&](std::size_t c) {
        power::energy_breakdown sum;
        for (const auto& r : results[c]) {
            sum.dynamic_j += r.energy.dynamic_j;
            sum.static_l1_j += r.energy.static_l1_j;
            sum.static_storage_j += r.energy.static_storage_j;
            sum.static_l3_j += r.energy.static_l3_j;
        }
        return sum;
    };

    const double base = total_breakdown(0).total();

    text_table t("Fig. 4(b): total energy normalised to L2-256KB");
    t.set_header({"config", "dyn.", "sta. L1-RT", "sta. L2/RESTT", "sta. L3",
                  "total", "saving"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto e = total_breakdown(c);
        t.add_row({configs[c].name, text_table::num(e.dynamic_j / base, 3),
                   text_table::num(e.static_l1_j / base, 3),
                   text_table::num(e.static_storage_j / base, 3),
                   text_table::num(e.static_l3_j / base, 3),
                   text_table::num(e.total() / base, 3),
                   text_table::pct(100.0 * (1.0 - e.total() / base))});
    }
    t.print();

    std::printf("Paper reference (Fig. 4(b)): total-energy savings over "
                "L2-256KB\n"
                "  LN2-72KB 16.5%%, LN3-144KB ~14%%, LN4-248KB 10.5%%; L3 "
                "static dominates; L-NUCA saves ~10%% of static L3 energy "
                "via shorter execution.\n");
    return 0;
}
