// Fig. 5(a): IPC harmonic mean for the D-NUCA baseline (DN-4x8) and for
// L-NUCA + D-NUCA combinations.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    return exp::run_app(
        argc, argv,
        {hier::presets::dnuca_4x8(), hier::presets::lnuca_dnuca(2),
         hier::presets::lnuca_dnuca(3), hier::presets::lnuca_dnuca(4)},
        wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            const auto baseline = rep.row(0);
            const double base_int = exp::group_ipc(baseline, false);
            const double base_fp = exp::group_ipc(baseline, true);

            text_table t(
                "Fig. 5(a): IPC harmonic mean, D-NUCA vs L-NUCA + D-NUCA");
            t.set_header({"config", "IPC Int", "IPC FP", "gain Int", "gain FP"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto row = rep.row(c);
                const double i = exp::group_ipc(row, false);
                const double f = exp::group_ipc(row, true);
                t.add_row({row.front().config_name, text_table::num(i, 3),
                           text_table::num(f, 3),
                           text_table::pct(100.0 * (i / base_int - 1.0)),
                           text_table::pct(100.0 * (f / base_fp - 1.0))});
            }
            t.print();

            std::printf(
                "Paper reference (Fig. 5(a)): gains over DN-4x8 are almost "
                "flat across LN2/LN3/LN4: Int ~+4.5%%, FP ~+7%% (LN2+DN: "
                "+4.2%% / +6.8%%).\n");

            // Count of benchmarks improving by >10% (paper: 60% of them).
            const auto ln2dn = rep.row(1);
            unsigned improved = 0;
            for (std::size_t w = 0; w < rep.workload_count; ++w)
                if (ln2dn[w].ipc > 1.10 * baseline[w].ipc)
                    ++improved;
            std::printf(
                "Benchmarks with >10%% IPC gain under LN2+DN: %u of %zu\n",
                improved, rep.workload_count);
        });
}
