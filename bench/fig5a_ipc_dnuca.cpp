// Fig. 5(a): IPC harmonic mean for the D-NUCA baseline (DN-4x8) and for
// L-NUCA + D-NUCA combinations.
#include "bench/bench_util.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    const auto opt = bench::parse_options(argc, argv);

    std::vector<hier::system_config> configs = {
        hier::presets::dnuca_4x8(),
        hier::presets::lnuca_dnuca(2),
        hier::presets::lnuca_dnuca(3),
        hier::presets::lnuca_dnuca(4),
    };
    const auto& suite = wl::spec2006_suite();
    const auto results =
        hier::run_matrix(configs, suite, opt.instructions, opt.warmup, opt.seed);

    const double base_int = bench::group_ipc(results[0], false);
    const double base_fp = bench::group_ipc(results[0], true);

    text_table t("Fig. 5(a): IPC harmonic mean, D-NUCA vs L-NUCA + D-NUCA");
    t.set_header({"config", "IPC Int", "IPC FP", "gain Int", "gain FP"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const double i = bench::group_ipc(results[c], false);
        const double f = bench::group_ipc(results[c], true);
        t.add_row({configs[c].name, text_table::num(i, 3), text_table::num(f, 3),
                   text_table::pct(100.0 * (i / base_int - 1.0)),
                   text_table::pct(100.0 * (f / base_fp - 1.0))});
    }
    t.print();

    std::printf("Paper reference (Fig. 5(a)): gains over DN-4x8 are almost "
                "flat across LN2/LN3/LN4: Int ~+4.5%%, FP ~+7%% (LN2+DN: "
                "+4.2%% / +6.8%%).\n");

    // Count of benchmarks improving by >10% (paper: 60% of them).
    unsigned improved = 0;
    for (std::size_t w = 0; w < suite.size(); ++w)
        if (results[1][w].ipc > 1.10 * results[0][w].ipc)
            ++improved;
    std::printf("Benchmarks with >10%% IPC gain under LN2+DN: %u of %zu\n",
                improved, suite.size());
    return 0;
}
