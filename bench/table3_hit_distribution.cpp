// Table III: percentage of read hits in each L-NUCA level relative to the
// read hits in the L2 of the L2-256KB baseline, and the avg/min transport
// network latency ratio.
//
// Runs the full SPEC CPU2006 proxy suite on L2-256KB, LN2, LN3 and LN4 and
// prints the same rows the paper reports.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    return exp::run_app(
        argc, argv,
        {hier::presets::l2_256kb(), hier::presets::lnuca_l3(2),
         hier::presets::lnuca_l3(3), hier::presets::lnuca_l3(4)},
        wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            std::vector<std::vector<hier::run_result>> results;
            for (std::size_t c = 0; c < rep.config_count; ++c)
                results.push_back(rep.row(c));
            const auto& baseline = results[0];

            // Per (config, group): mean over benchmarks of level/L2 hits.
            auto level_pct = [&](std::size_t config, unsigned level, bool fp) {
                std::vector<double> values;
                for (std::size_t w = 0; w < rep.workload_count; ++w) {
                    const auto& r = results[config][w];
                    if (r.floating_point != fp)
                        continue;
                    if (baseline[w].l2_read_hits == 0 ||
                        level >= r.fabric_read_hits.size())
                        continue;
                    values.push_back(100.0 * double(r.fabric_read_hits[level]) /
                                     double(baseline[w].l2_read_hits));
                }
                return arithmetic_mean(values);
            };
            auto transport_ratio = [&](std::size_t config, bool fp) {
                std::vector<double> values;
                for (std::size_t w = 0; w < rep.workload_count; ++w) {
                    const auto& r = results[config][w];
                    if (r.floating_point != fp)
                        continue;
                    if (r.transport_min > 0)
                        values.push_back(double(r.transport_actual) /
                                         double(r.transport_min));
                }
                return arithmetic_mean(values);
            };

            text_table t("Table III: read hits per L-NUCA level relative to "
                         "L2-256KB read hits; avg/min transport latency");
            t.set_header({"config", "Le2/L2 Int", "Le2/L2 FP", "Le3/L2 Int",
                          "Le3/L2 FP", "Le4/L2 Int", "Le4/L2 FP", "All/L2 Int",
                          "All/L2 FP", "T.lat Int", "T.lat FP"});
            for (std::size_t c = 1; c < rep.config_count; ++c) {
                const unsigned levels = unsigned(c) + 1; // LN2, LN3, LN4
                double all_int = 0, all_fp = 0;
                std::vector<std::string> row{results[c].front().config_name};
                for (unsigned level = 2; level <= 4; ++level) {
                    if (level <= levels) {
                        const double i = level_pct(c, level, false);
                        const double f = level_pct(c, level, true);
                        all_int += i;
                        all_fp += f;
                        row.push_back(text_table::num(i, 1));
                        row.push_back(text_table::num(f, 1));
                    } else {
                        row.push_back("-");
                        row.push_back("-");
                    }
                }
                row.push_back(text_table::num(all_int, 1));
                row.push_back(text_table::num(all_fp, 1));
                row.push_back(text_table::num(transport_ratio(c, false), 3));
                row.push_back(text_table::num(transport_ratio(c, true), 3));
                t.add_row(std::move(row));
            }
            t.print();

            std::printf(
                "Paper reference (Table III):\n"
                "  LN2-72KB : Le2 58.7 / 40.9            all 58.7/40.9   "
                "lat 1.014/1.009\n"
                "  LN3-144KB: Le2 59.9/41.0 Le3 21.2/29.4 all 81.2/70.3  "
                "lat 1.008/1.005\n"
                "  LN4-248KB: Le2 60.1/41.0 Le3 21.1/27.1 Le4 7.4/19.5 "
                "all 88.6/87.7 lat 1.005/1.004\n");

            // Search restarts: the paper observes transport contention
            // restarts "rarely occur"; report the measured rate.
            double restarts = 0, searches = 0;
            for (std::size_t c = 1; c < rep.config_count; ++c)
                for (const auto& r : results[c]) {
                    restarts += double(r.search_restarts);
                    searches += double(r.searches);
                }
            std::printf(
                "\nSearch restarts due to transport contention: %.0f of %.0f "
                "searches (%.4f%%)\n",
                restarts, searches, 100.0 * safe_ratio(restarts, searches));
        });
}
