// Section III-B ablation: random distributed routing vs deterministic
// first-output (dimension-order-like) selection on the transport and
// replacement networks, measured by transport latency inflation and
// contention restarts on the full suite.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    hier::system_config random_cfg = hier::presets::lnuca_l3(3);
    hier::system_config deterministic_cfg = random_cfg;
    deterministic_cfg.name = "LN3 (deterministic routing)";
    deterministic_cfg.fabric.random_routing = false;

    return exp::run_app(
        argc, argv, {random_cfg, deterministic_cfg}, wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            text_table t(
                "Random distributed routing vs deterministic output choice");
            t.set_header({"config", "avg/min transport (Int)",
                          "avg/min transport (FP)", "restarts", "IPC Int",
                          "IPC FP"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto row = rep.row(c);
                double restarts = 0;
                for (const auto& r : row)
                    restarts += double(r.search_restarts);
                auto ratio = [&](bool fp) {
                    return exp::group_mean(
                        row, fp, [](const hier::run_result& r) {
                            return r.transport_min == 0
                                       ? 1.0
                                       : double(r.transport_actual) /
                                             double(r.transport_min);
                        });
                };
                t.add_row({row.front().config_name,
                           text_table::num(ratio(false), 4),
                           text_table::num(ratio(true), 4),
                           text_table::num(restarts, 0),
                           text_table::num(exp::group_ipc(row, false), 3),
                           text_table::num(exp::group_ipc(row, true), 3)});
            }
            t.print();

            std::printf(
                "Paper: random output selection reduces contention versus "
                "dimension-order routing, keeping avg/min transport latency "
                "within 1.5%% (Table III right).\n");
        });
}
