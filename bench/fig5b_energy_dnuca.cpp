// Fig. 5(b): total energy normalised to DN-4x8, stacked as
// {dynamic, static L1/r-tile, static tiles (RESTT), static D-NUCA}.
#include "bench/bench_util.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    const auto opt = bench::parse_options(argc, argv);

    std::vector<hier::system_config> configs = {
        hier::presets::dnuca_4x8(),
        hier::presets::lnuca_dnuca(2),
        hier::presets::lnuca_dnuca(3),
        hier::presets::lnuca_dnuca(4),
    };
    const auto& suite = wl::spec2006_suite();
    const auto results =
        hier::run_matrix(configs, suite, opt.instructions, opt.warmup, opt.seed);

    auto totals = [&](std::size_t c) {
        power::energy_breakdown sum;
        for (const auto& r : results[c]) {
            sum.dynamic_j += r.energy.dynamic_j;
            sum.static_l1_j += r.energy.static_l1_j;
            sum.static_storage_j += r.energy.static_storage_j;
            sum.static_l3_j += r.energy.static_l3_j;
        }
        return sum;
    };
    const auto base = totals(0);

    text_table t("Fig. 5(b): total energy normalised to DN-4x8");
    t.set_header({"config", "dyn.", "sta. L1-RT", "sta. RESTT", "sta. D-NUCA",
                  "total", "saving"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto e = totals(c);
        t.add_row({configs[c].name, text_table::num(e.dynamic_j / base.total(), 3),
                   text_table::num(e.static_l1_j / base.total(), 3),
                   text_table::num(e.static_storage_j / base.total(), 3),
                   text_table::num(e.static_l3_j / base.total(), 3),
                   text_table::num(e.total() / base.total(), 3),
                   text_table::pct(100.0 * (1.0 - e.total() / base.total()))});
    }
    t.print();

    const double dyn_saving =
        100.0 * (1.0 - totals(1).dynamic_j / base.dynamic_j);
    std::printf("Dynamic energy saving of LN2+DN over DN-4x8: %.1f%%\n",
                dyn_saving);
    std::printf("Paper reference (Fig. 5(b)): total savings 4.25%% (LN2+DN) "
                "down to 0.2%% (LN4+DN); LN2+DN saves 19.8%% of *dynamic* "
                "energy because 8KB tile hits displace 256KB bank accesses "
                "and VC routing.\n");
    return 0;
}
