// Fig. 5(b): total energy normalised to DN-4x8, stacked as
// {dynamic, static L1/r-tile, static tiles (RESTT), static D-NUCA}.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    return exp::run_app(
        argc, argv,
        {hier::presets::dnuca_4x8(), hier::presets::lnuca_dnuca(2),
         hier::presets::lnuca_dnuca(3), hier::presets::lnuca_dnuca(4)},
        wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            auto totals = [&](std::size_t c) {
                power::energy_breakdown sum;
                for (const auto& r : rep.row(c)) {
                    sum.dynamic_j += r.energy.dynamic_j;
                    sum.static_l1_j += r.energy.static_l1_j;
                    sum.static_storage_j += r.energy.static_storage_j;
                    sum.static_l3_j += r.energy.static_l3_j;
                }
                return sum;
            };
            const auto base = totals(0);

            text_table t("Fig. 5(b): total energy normalised to DN-4x8");
            t.set_header({"config", "dyn.", "sta. L1-RT", "sta. RESTT",
                          "sta. D-NUCA", "total", "saving"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto e = totals(c);
                t.add_row(
                    {rep.row(c).front().config_name,
                     text_table::num(e.dynamic_j / base.total(), 3),
                     text_table::num(e.static_l1_j / base.total(), 3),
                     text_table::num(e.static_storage_j / base.total(), 3),
                     text_table::num(e.static_l3_j / base.total(), 3),
                     text_table::num(e.total() / base.total(), 3),
                     text_table::pct(100.0 * (1.0 - e.total() / base.total()))});
            }
            t.print();

            const double dyn_saving =
                100.0 * (1.0 - totals(1).dynamic_j / base.dynamic_j);
            std::printf("Dynamic energy saving of LN2+DN over DN-4x8: %.1f%%\n",
                        dyn_saving);
            std::printf(
                "Paper reference (Fig. 5(b)): total savings 4.25%% (LN2+DN) "
                "down to 0.2%% (LN4+DN); LN2+DN saves 19.8%% of *dynamic* "
                "energy because 8KB tile hits displace 256KB bank accesses "
                "and VC routing.\n");
        });
}
