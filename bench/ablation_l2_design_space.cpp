// Section V-A note: the L2-256KB baseline was "the most performance" point
// of an L2 design-space exploration. Sweep L2 size (with latency scaled by
// a minicacti-flavoured rule) and reproduce the exploration.
#include "src/lnuca.h"

using namespace lnuca;

int main(int argc, char** argv)
{
    struct point {
        std::uint64_t size;
        unsigned ways;
        unsigned completion;
        unsigned initiation;
    };
    // Latency grows with array size (CACTI-style): small L2s respond
    // faster but capture less.
    const std::vector<point> sweep_points = {
        {64_KiB, 4, 3, 1},
        {128_KiB, 8, 3, 2},
        {256_KiB, 8, 4, 2},
        {512_KiB, 8, 6, 3},
        {1_MiB, 16, 8, 4},
    };

    std::vector<hier::system_config> configs;
    for (const auto& p : sweep_points) {
        hier::system_config cfg = hier::presets::l2_256kb();
        cfg.name = "L2-" + format_size(p.size);
        cfg.l2.size_bytes = p.size;
        cfg.l2.ways = p.ways;
        cfg.l2.completion_latency = p.completion;
        cfg.l2.initiation_interval = p.initiation;
        configs.push_back(cfg);
    }

    return exp::run_app(
        argc, argv, std::move(configs), wl::spec2006_suite(),
        [](const exp::report& rep, const exp::app_options&) {
            text_table t("L2 design space (Section V-A): IPC harmonic means");
            t.set_header({"config", "IPC Int", "IPC FP", "IPC all"});
            for (std::size_t c = 0; c < rep.config_count; ++c) {
                const auto row = rep.row(c);
                std::vector<double> all;
                for (const auto& r : row)
                    all.push_back(r.ipc);
                t.add_row({row.front().config_name,
                           text_table::num(exp::group_ipc(row, false), 3),
                           text_table::num(exp::group_ipc(row, true), 3),
                           text_table::num(harmonic_mean(all), 3)});
            }
            t.print();

            std::printf(
                "Paper: 256KB was the best-performing L2 for the three-level "
                "conventional hierarchy; the sweep should peak around it.\n");
        });
}
