// Section III-A claims: the broadcast tree vs a conventional 2D mesh over
// the same floorplan - hop counts, link counts, and how the maximum
// distance grows per added level.
#include "src/lnuca.h"

using namespace lnuca;

int main(int, char**)
{
    text_table t("Search broadcast tree vs NUCA-style 2D mesh (Section III-A)");
    t.set_header({"levels", "tiles", "tree links", "tree max hops",
                  "mesh links", "mesh max hops", "mesh/tree links",
                  "exit dist (repl.)", "3-network links"});
    for (unsigned levels = 2; levels <= 8; ++levels) {
        const fabric::geometry geo(levels);
        const unsigned tree_links = geo.search_link_count();
        const unsigned mesh_links = geo.mesh_equivalent_link_count();
        const unsigned total =
            tree_links + geo.transport_link_count() + geo.replacement_link_count();
        t.add_row({std::to_string(levels), std::to_string(geo.tile_count()),
                   std::to_string(tree_links),
                   std::to_string(geo.search_max_distance()),
                   std::to_string(mesh_links),
                   std::to_string(geo.mesh_equivalent_max_distance()),
                   text_table::num(double(mesh_links) / tree_links, 2),
                   std::to_string(geo.replacement_exit_distance()),
                   std::to_string(total)});
    }
    t.print();

    std::printf(
        "Paper claims: a 2D mesh doubles the hops to reach all tiles, needs\n"
        ">50%% more links than the broadcast tree, and adds 2 hops per level\n"
        "(the tree adds 1). The replacement exit distance grows by 3 hops\n"
        "per added level.\n");
    return 0;
}
