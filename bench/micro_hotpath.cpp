// Zero-allocation executed-cycle hot path: measurement and enforcement.
//
// Two jobs in one binary:
//
//  1. A steady-state allocation gate that runs the saturated presets under
//     a counting global allocator and FAILS (exit 1) if any executed cycle
//     of the measurement window touches the heap. CI runs this as the
//     perf-smoke step; the zero-allocation invariant of DESIGN.md's
//     "Anatomy of an executed cycle" section is enforced here, not by
//     review.
//  2. google-benchmark timings of saturated-preset whole-system simulation
//     (cycles/second and allocations/cycle as reported counters), emitted
//     as BENCH_hotpath.json by CI next to BENCH_engine.json.
//
// "Saturated" means the core acts nearly every cycle (a cache-resident
// 456.hmmer proxy), i.e. the idle-skip engine cannot delete cycles and all
// the cost sits in the executed-cycle data plane this gate protects.
#include "src/lnuca.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <execinfo.h>
#include <new>

// The replacement operator new routes through malloc; GCC's inliner then
// flags ordinary `delete` call sites as mismatched with malloc. The pairing
// is correct (our delete frees with free), so silence the false positive.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// ---------------------------------------------------------------------------
// Counting global allocator. Replacing operator new/delete binary-wide is
// the hook google-benchmark itself and the standard library route through,
// so the count covers every heap allocation in the process.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_trap{false}; // debug aid: abort on first gated allocation
}

void* operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (g_trap.load(std::memory_order_relaxed)) {
        void* frames[32];
        const int n = ::backtrace(frames, 32);
        ::backtrace_symbols_fd(frames, n, 2);
        std::abort();
    }
    if (void* p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept
{
    return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__cpp_aligned_new)
void* operator new(std::size_t size, std::align_val_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(std::size_t(align),
                                     (size + std::size_t(align) - 1) &
                                         ~(std::size_t(align) - 1)))
        return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
#endif

namespace {

using namespace lnuca;

struct hotpath_case {
    const char* name;
    hier::system_config config;
    wl::workload_profile workload;
};

const wl::workload_profile& saturated_workload()
{
    static const wl::workload_profile w = *wl::find_spec2006("456.hmmer");
    return w;
}

/// Trace-replay front end: the scenario generates in-memory lanes at
/// construction; the measurement window then runs the trace_stream decoder
/// (and, for the CMP case, its coherence traffic) under the gate. The
/// scenario must stay fabric-resident like the hmmer proxy - "saturated"
/// means the core acts every cycle, not that misses stream to the next
/// level (a store-streaming producer lane would instead measure the
/// fabric's overflow-queue growth).
wl::workload_profile trace_workload(const char* scenario)
{
    wl::workload_profile w;
    w.name = std::string("scenario:") + scenario;
    w.scenario = scenario;
    return w;
}

std::vector<hotpath_case> saturated_cases()
{
    std::vector<hotpath_case> cases;
    cases.push_back({"L2-256KB", hier::presets::l2_256kb(),
                     saturated_workload()});
    cases.push_back({"LN3-144KB", hier::presets::lnuca_l3(3),
                     saturated_workload()});
    // CMP: the coherence hub (directory, snoops, c2c forwards) joins the
    // executed cycle and must obey the same zero-allocation contract.
    cases.push_back({"L2-256KB-2c",
                     hier::presets::cmp(hier::presets::l2_256kb(), 2),
                     saturated_workload()});
    cases.push_back({"LN3-144KB-2c",
                     hier::presets::cmp(hier::presets::lnuca_l3(3), 2),
                     saturated_workload()});
    // Trace-driven streams: the mmap/in-memory record decoder replaces the
    // synthetic generator and must be equally allocation-free.
    cases.push_back({"LN3-trace", hier::presets::lnuca_l3(3),
                     trace_workload("ping_pong")});
    cases.push_back({"LN3-trace-2c",
                     hier::presets::cmp(hier::presets::lnuca_l3(3), 2),
                     trace_workload("producer_consumer")});
    for (auto& c : cases)
        c.config.engine_mode = sim::schedule_mode::dense; // every cycle executes
    return cases;
}

/// Run `instructions` more committed instructions without resetting stats
/// (reset would re-create counters and allocate); returns executed cycles.
cycle_t run_more(hier::system& sys, std::uint64_t instructions)
{
    const cycle_t start = sys.engine().now();
    for (unsigned i = 0; i < sys.cores(); ++i)
        sys.core(i).set_instruction_limit(sys.core(i).committed() +
                                          instructions);
    sys.engine().run_until(
        [&] {
            for (unsigned i = 0; i < sys.cores(); ++i)
                if (!sys.core(i).done())
                    return false;
            return true;
        },
        start + 400 * instructions + 2'000'000);
    return sys.engine().now() - start;
}

// ---------------------------------------------------------------------------
// The gate: after warm-up, a measurement window of a saturated dense run
// must perform zero heap allocations.
// ---------------------------------------------------------------------------
constexpr std::uint64_t gate_warmup_instructions = 60'000;
constexpr std::uint64_t gate_window_instructions = 120'000;

int run_gate()
{
    int failures = 0;
    for (const hotpath_case& c : saturated_cases()) {
        hier::system sys(c.config, c.workload, 1);
        run_more(sys, gate_warmup_instructions); // reach steady state

        const std::uint64_t before = g_allocations.load();
        if (std::getenv("HOTPATH_TRAP"))
            g_trap.store(true);
        const cycle_t cycles = run_more(sys, gate_window_instructions);
        g_trap.store(false);
        const std::uint64_t allocations = g_allocations.load() - before;

        std::printf("hotpath gate: %-12s %10llu cycles, %llu allocations "
                    "(%.6f/cycle) -> %s\n",
                    c.name, (unsigned long long)cycles,
                    (unsigned long long)allocations,
                    cycles ? double(allocations) / double(cycles) : 0.0,
                    allocations == 0 ? "OK" : "FAIL");
        if (allocations != 0)
            ++failures;

        // The fabric's downstream overflow ring is pre-sized from config;
        // reaching the configured depth means the ring would have regrown
        // (a hot-path allocation) before the backpressure bound landed.
        // Gate the high-water mark strictly below the depth in steady
        // state, alongside the allocation count it protects.
        if (const fabric::lnuca_cache* fab = sys.fabric()) {
            const std::uint64_t high_water =
                fab->counters().get("downstream_queue_high_water");
            const std::uint64_t depth = fab->config().downstream_queue_depth;
            std::printf("hotpath gate: %-12s downstream queue high-water "
                        "%llu / depth %llu -> %s\n",
                        c.name, (unsigned long long)high_water,
                        (unsigned long long)depth,
                        high_water < depth ? "OK" : "FAIL");
            if (high_water >= depth)
                ++failures;
        }
    }
    return failures;
}

// ---------------------------------------------------------------------------
// Benchmarks: saturated cycles/second plus allocations/cycle as counters.
// ---------------------------------------------------------------------------
void bm_hotpath(benchmark::State& state, const hier::system_config& config)
{
    std::uint64_t cycles = 0, allocations = 0;
    for (auto _ : state) {
        state.PauseTiming();
        hier::system sys(config, saturated_workload(), 1);
        run_more(sys, 20'000); // warm-up outside the timed window
        state.ResumeTiming();
        const std::uint64_t before = g_allocations.load();
        cycles += run_more(sys, 40'000);
        allocations += g_allocations.load() - before;
    }
    state.SetItemsProcessed(std::int64_t(cycles)); // items/s = cycles/s
    state.counters["allocs_per_cycle"] =
        cycles == 0 ? 0.0 : double(allocations) / double(cycles);
}

void bm_saturated_conventional(benchmark::State& s)
{
    auto config = hier::presets::l2_256kb();
    config.engine_mode = sim::schedule_mode::dense;
    bm_hotpath(s, config);
}

void bm_saturated_lnuca(benchmark::State& s)
{
    auto config = hier::presets::lnuca_l3(3);
    config.engine_mode = sim::schedule_mode::dense;
    bm_hotpath(s, config);
}

void bm_saturated_cmp2(benchmark::State& s)
{
    auto config = hier::presets::cmp(hier::presets::l2_256kb(), 2);
    config.engine_mode = sim::schedule_mode::dense;
    bm_hotpath(s, config);
}

BENCHMARK(bm_saturated_conventional)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_saturated_lnuca)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_saturated_cmp2)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    const int gate_failures = run_gate();
    if (gate_failures != 0) {
        std::fprintf(stderr,
                     "hotpath gate FAILED: %d case(s) allocate in steady "
                     "state\n",
                     gate_failures);
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
