// Workload atlas: characterises every SPEC CPU2006 proxy - instruction
// mix, working set, and LRU hit rates at the hierarchy's capacity
// landmarks - the data the proxies were calibrated against.
//
// The per-workload LRU characterisations are independent, so they run on
// the exp::pool work-stealing scheduler (one job per proxy) and the table
// is assembled in suite order afterwards.
//
//   ./examples/workload_atlas [--samples 200000] [--threads N]
#include "src/lnuca.h"

#include <cstdio>
#include <list>
#include <unordered_map>

using namespace lnuca;

namespace {

struct locality {
    double l1 = 0;    // <= 32KB of blocks
    double ln3 = 0;   // <= L1 + Le2 + Le3 window
    double l2 = 0;    // <= L1 + 256KB window
    double loads = 0;
    double branches = 0;
};

locality characterise(const wl::workload_profile& profile, int samples)
{
    wl::synthetic_stream stream(profile, 7);
    std::list<addr_t> lru;
    std::unordered_map<addr_t, std::list<addr_t>::iterator> where;
    std::uint64_t h1 = 0, h3 = 0, h2 = 0, accesses = 0, loads = 0,
                  branches = 0;
    const std::size_t cap1 = 1024, cap3 = 4608, cap2 = 9216;
    for (int i = 0; i < samples; ++i) {
        const auto inst = stream.next();
        if (inst.op == cpu::op_class::branch)
            ++branches;
        if (inst.op == cpu::op_class::load)
            ++loads;
        if (inst.op != cpu::op_class::load && inst.op != cpu::op_class::store)
            continue;
        ++accesses;
        const addr_t block = inst.addr & ~addr_t(31);
        const auto it = where.find(block);
        if (it != where.end()) {
            std::size_t depth = 0;
            for (auto j = lru.begin(); j != it->second && depth <= cap2;
                 ++j, ++depth)
                ;
            if (depth < cap1)
                ++h1;
            if (depth < cap3)
                ++h3;
            if (depth < cap2)
                ++h2;
            lru.erase(it->second);
        }
        lru.push_front(block);
        where[block] = lru.begin();
        if (lru.size() > cap2 + 1) {
            where.erase(lru.back());
            lru.pop_back();
        }
    }
    locality out;
    out.l1 = 100.0 * double(h1) / double(accesses);
    out.ln3 = 100.0 * double(h3) / double(accesses);
    out.l2 = 100.0 * double(h2) / double(accesses);
    out.loads = 100.0 * double(loads) / samples;
    out.branches = 100.0 * double(branches) / samples;
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const int samples = int(args.get_u64("samples", 200000));
    const unsigned threads = unsigned(args.get_u64("threads", 0));

    const auto& suite = wl::spec2006_suite();
    std::vector<locality> localities(suite.size());
    {
        exp::pool workers(threads);
        workers.parallel_for(suite.size(), [&](std::size_t w) {
            localities[w] = characterise(suite[w], samples);
        });
    }

    text_table t("SPEC CPU2006 proxy atlas (LRU hit % at capacity landmarks)");
    t.set_header({"benchmark", "kind", "loads%", "branch%", "<=L1", "<=LN3 win",
                  "<=L2 win", "footprint"});
    for (std::size_t w = 0; w < suite.size(); ++w) {
        const auto& profile = suite[w];
        const locality& loc = localities[w];
        t.add_row({profile.name, profile.floating_point ? "FP" : "INT",
                   text_table::num(loc.loads, 1),
                   text_table::num(loc.branches, 1), text_table::num(loc.l1, 1),
                   text_table::num(loc.ln3, 1), text_table::num(loc.l2, 1),
                   format_size(profile.footprint_blocks * 32)});
    }
    t.print();

    std::printf("\nThe gap between the <=L1 and <=LN3-window columns is the "
                "reuse the L-NUCA captures; between <=LN3 and <=L2 is what "
                "only the 256KB L2 can hold (the paper's Table III mass).\n");
    return 0;
}
