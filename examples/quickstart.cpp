// Quickstart: build the paper's LN3-144KB hierarchy, run a SPEC proxy
// workload through it via the experiment runner, and print the headline
// statistics.
//
//   ./examples/quickstart [--workload 429.mcf] [--config LN3]
//                         [--instructions N] [--warmup N] [--threads N]
//                         [--json out.jsonl]
//
// Pass --workload all to sweep the whole SPEC proxy suite (one job per
// workload, scheduled across the pool).
#include "src/lnuca.h"

#include <cstdio>
#include <string>

using namespace lnuca;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const std::string workload_name = args.get_string("workload", "429.mcf");
    const std::string config_name = args.get_string("config", "LN3");

    std::vector<wl::workload_profile> workloads;
    if (workload_name == "all") {
        workloads = wl::spec2006_suite();
    } else {
        const auto workload = wl::find_spec2006(workload_name);
        if (!workload) {
            std::fprintf(stderr, "unknown workload '%s' (or 'all')\n",
                         workload_name.c_str());
            return 1;
        }
        workloads.push_back(*workload);
    }

    hier::system_config config;
    if (config_name == "L2")
        config = hier::presets::l2_256kb();
    else if (config_name == "LN2")
        config = hier::presets::lnuca_l3(2);
    else if (config_name == "LN3")
        config = hier::presets::lnuca_l3(3);
    else if (config_name == "LN4")
        config = hier::presets::lnuca_l3(4);
    else if (config_name == "DN")
        config = hier::presets::dnuca_4x8();
    else if (config_name == "LN2+DN")
        config = hier::presets::lnuca_dnuca(2);
    else {
        std::fprintf(stderr, "unknown config '%s' (L2|LN2|LN3|LN4|DN|LN2+DN)\n",
                     config_name.c_str());
        return 1;
    }

    return exp::run_app(
        argc, argv, {config}, std::move(workloads),
        [](const exp::report& rep, const exp::app_options& opt) {
            std::printf("L-NUCA quickstart: %zu run(s) on %s, %llu "
                        "instructions (+%llu warmup)\n\n",
                        rep.jobs.size(),
                        rep.results.front().config_name.c_str(),
                        static_cast<unsigned long long>(opt.instructions),
                        static_cast<unsigned long long>(opt.warmup));

            if (rep.workload_count == 1) {
                const hier::run_result& r = rep.results.front();
                text_table t("Run summary: " + r.workload_name);
                t.set_header({"metric", "value"});
                t.add_row({"IPC", text_table::num(r.ipc, 3)});
                t.add_row({"cycles", std::to_string(r.cycles)});
                t.add_row({"loads served by L1", std::to_string(r.loads_l1)});
                t.add_row({"loads served by L-NUCA",
                           std::to_string(r.loads_fabric)});
                t.add_row({"loads served by L2", std::to_string(r.loads_l2)});
                t.add_row({"loads served by L3", std::to_string(r.loads_l3)});
                t.add_row({"loads served by D-NUCA",
                           std::to_string(r.loads_dnuca)});
                t.add_row({"loads served by memory",
                           std::to_string(r.loads_memory)});
                t.add_row({"avg load-to-use latency",
                           text_table::num(r.avg_load_latency, 1)});
                for (unsigned level = 2; level < r.fabric_read_hits.size();
                     ++level)
                    t.add_row({"read hits in Le" + std::to_string(level),
                               std::to_string(r.fabric_read_hits[level])});
                if (r.transport_min > 0)
                    t.add_row({"avg/min transport latency",
                               text_table::num(double(r.transport_actual) /
                                                   double(r.transport_min),
                                               3)});
                t.add_row({"search restarts",
                           std::to_string(r.search_restarts)});
                t.add_row({"total energy (mJ)",
                           text_table::num(r.energy.total() * 1e3, 3)});
                t.print();
            }

            if (rep.workload_count > 1) {
                text_table t("Sweep summary");
                t.set_header({"workload", "IPC", "cycles", "load lat.",
                              "energy (mJ)"});
                for (const auto& r : rep.row(0))
                    t.add_row({r.workload_name, text_table::num(r.ipc, 3),
                               std::to_string(r.cycles),
                               text_table::num(r.avg_load_latency, 1),
                               text_table::num(r.energy.total() * 1e3, 3)});
                t.print();
            }
        });
}
