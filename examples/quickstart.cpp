// Quickstart: build the paper's LN3-144KB hierarchy, run a SPEC proxy
// workload through it, and print the headline statistics.
//
//   ./examples/quickstart [--workload 429.mcf] [--config LN3]
//                         [--instructions N] [--warmup N]
#include "src/lnuca.h"

#include <cstdio>
#include <string>

using namespace lnuca;

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const std::string workload_name = args.get_string("workload", "429.mcf");
    const std::string config_name = args.get_string("config", "LN3");
    const auto instructions =
        args.get_u64("instructions", hier::default_instructions);
    const auto warmup = args.get_u64("warmup", hier::default_warmup);

    const auto workload = wl::find_spec2006(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
        return 1;
    }

    hier::system_config config;
    if (config_name == "L2")
        config = hier::presets::l2_256kb();
    else if (config_name == "LN2")
        config = hier::presets::lnuca_l3(2);
    else if (config_name == "LN3")
        config = hier::presets::lnuca_l3(3);
    else if (config_name == "LN4")
        config = hier::presets::lnuca_l3(4);
    else if (config_name == "DN")
        config = hier::presets::dnuca_4x8();
    else if (config_name == "LN2+DN")
        config = hier::presets::lnuca_dnuca(2);
    else {
        std::fprintf(stderr, "unknown config '%s' (L2|LN2|LN3|LN4|DN|LN2+DN)\n",
                     config_name.c_str());
        return 1;
    }

    std::printf("L-NUCA quickstart: %s on %s, %llu instructions (+%llu warmup)\n\n",
                workload->name.c_str(), config.name.c_str(),
                static_cast<unsigned long long>(instructions),
                static_cast<unsigned long long>(warmup));

    const hier::run_result r = hier::run_one(config, *workload, instructions,
                                             warmup);

    text_table t("Run summary");
    t.set_header({"metric", "value"});
    t.add_row({"IPC", text_table::num(r.ipc, 3)});
    t.add_row({"cycles", std::to_string(r.cycles)});
    t.add_row({"loads served by L1", std::to_string(r.loads_l1)});
    t.add_row({"loads served by L-NUCA", std::to_string(r.loads_fabric)});
    t.add_row({"loads served by L2", std::to_string(r.loads_l2)});
    t.add_row({"loads served by L3", std::to_string(r.loads_l3)});
    t.add_row({"loads served by D-NUCA", std::to_string(r.loads_dnuca)});
    t.add_row({"loads served by memory", std::to_string(r.loads_memory)});
    t.add_row({"avg load-to-use latency", text_table::num(r.avg_load_latency, 1)});
    for (unsigned level = 2; level < r.fabric_read_hits.size(); ++level)
        t.add_row({"read hits in Le" + std::to_string(level),
                   std::to_string(r.fabric_read_hits[level])});
    if (r.transport_min > 0)
        t.add_row({"avg/min transport latency",
                   text_table::num(double(r.transport_actual) /
                                       double(r.transport_min),
                                   3)});
    t.add_row({"search restarts", std::to_string(r.search_restarts)});
    t.add_row({"total energy (mJ)", text_table::num(r.energy.total() * 1e3, 3)});
    t.print();
    return 0;
}
