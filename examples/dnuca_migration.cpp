// D-NUCA migration study: shows generational promotion concentrating hot
// blocks in the rows closest to the controller.
//
//   ./examples/dnuca_migration [--hot 64] [--accesses 4000]
#include "src/lnuca.h"

#include <cstdio>
#include <map>

using namespace lnuca;

namespace {

struct recorder final : mem::mem_client {
    std::uint64_t done = 0;
    void respond(const mem::mem_response&) override { ++done; }
};

struct instant_memory final : sim::ticked, mem::mem_port {
    bool can_accept(const mem::mem_request&) const override { return true; }
    void accept(const mem::mem_request& r) override
    {
        if (r.kind == mem::access_kind::read && r.needs_response)
            pending.push(r.created_at + 228, r);
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending.pop_ready(now)) {
            mem::mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::memory;
            if (client)
                client->respond(resp);
        }
    }
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem::mem_request> pending;
};

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const std::uint64_t hot_blocks = args.get_u64("hot", 64);
    const std::uint64_t accesses = args.get_u64("accesses", 4000);

    dnuca::dnuca_config config;
    mem::txn_id_source ids;
    dnuca::dnuca_cache cache(config, ids);
    recorder client;
    instant_memory memory;
    cache.set_upstream(&client);
    cache.set_downstream(&memory);
    memory.client = &cache;

    sim::engine engine;
    engine.add(cache);
    engine.add(memory);

    // Pre-warm the whole array, hot blocks landing wherever the spread
    // mapping puts them (rows 1..4).
    for (std::uint64_t i = 0; i < cache.size_bytes() / 128; ++i)
        cache.prewarm(0x1000000 + i * 128);

    std::printf("Hammering %llu hot blocks with %llu reads...\n\n",
                (unsigned long long)hot_blocks, (unsigned long long)accesses);

    rng rng(1);
    for (std::uint64_t n = 0; n < accesses; ++n) {
        mem::mem_request read;
        read.id = ids.next();
        read.addr = 0x1000000 + rng.below(hot_blocks) * 128;
        read.kind = mem::access_kind::read;
        read.created_at = engine.now();
        if (cache.can_accept(read))
            cache.accept(read);
        engine.run(8);
    }
    engine.run(2000);

    text_table t("Row hit distribution (row 1 = closest to the controller)");
    t.set_header({"row", "read hits", "share"});
    std::uint64_t total = 0;
    for (unsigned row = 1; row <= config.rows; ++row)
        total += cache.hits_in_row(row);
    for (unsigned row = 1; row <= config.rows; ++row)
        t.add_row({std::to_string(row), std::to_string(cache.hits_in_row(row)),
                   text_table::pct(100.0 * safe_ratio(
                                               double(cache.hits_in_row(row)),
                                               double(total)))});
    t.print();

    std::printf("promotions: %llu, mesh flit-hops: %llu\n",
                (unsigned long long)cache.counters().get("promotions"),
                (unsigned long long)cache.mesh().flit_hops());
    std::printf("\nGenerational promotion should concentrate hits in rows 1-2 "
                "after the warm-up phase - the D-NUCA's way of narrowing the "
                "latency gap that the L-NUCA closes with 1-cycle tiles.\n");
    return 0;
}
