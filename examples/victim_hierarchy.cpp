// Victim-hierarchy study: drives the fabric directly (no core) to show the
// distributed victim cache at work - evictions domino outwards in latency
// order, reuse pulls blocks back, corner tiles spill to the next level.
//
//   ./examples/victim_hierarchy [--levels 3] [--blocks 4096]
#include "src/lnuca.h"

#include <cstdio>
#include <map>

using namespace lnuca;

namespace {

struct recorder final : mem::mem_client {
    std::map<txn_id_t, mem::mem_response> responses;
    void respond(const mem::mem_response& r) override { responses[r.id] = r; }
};

struct silent_l3 final : sim::ticked, mem::mem_port {
    bool can_accept(const mem::mem_request&) const override { return true; }
    void accept(const mem::mem_request& r) override
    {
        if (r.kind == mem::access_kind::read && r.needs_response)
            pending.push(r.created_at + 20, r);
    }
    void tick(cycle_t now) override
    {
        while (auto r = pending.pop_ready(now)) {
            mem::mem_response resp;
            resp.id = r->id;
            resp.addr = r->addr;
            resp.ready_at = now;
            resp.served_by = mem::service_level::l3;
            if (client)
                client->respond(resp);
        }
    }
    mem::mem_client* client = nullptr;
    sim::timed_queue<mem::mem_request> pending;
};

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    fabric::fabric_config config;
    config.levels = unsigned(args.get_u64("levels", 3));
    const std::uint64_t blocks = args.get_u64("blocks", 4096);

    mem::txn_id_source ids;
    fabric::lnuca_cache fab(config, ids);
    recorder client;
    silent_l3 l3;
    fab.set_upstream(&client);
    fab.set_downstream(&l3);
    l3.client = &fab;

    sim::engine engine;
    engine.add(fab);
    engine.add(l3);

    std::printf("Phase 1: evict %llu distinct blocks into a %s fabric\n",
                (unsigned long long)blocks,
                format_size(fab.tile_capacity_bytes()).c_str());
    for (std::uint64_t i = 0; i < blocks; ++i) {
        mem::mem_request evict;
        evict.id = ids.next();
        evict.addr = 0x100000 + i * 32;
        evict.kind = mem::access_kind::writeback;
        evict.needs_response = false;
        evict.dirty = i % 3 == 0;
        evict.created_at = engine.now();
        while (!fab.can_accept(evict)) {
            engine.run(1);
            evict.created_at = engine.now();
        }
        fab.accept(evict);
        engine.run(2);
    }
    engine.run(1000);

    const auto& c = fab.counters();
    std::uint64_t occupancy = 0;
    for (unsigned i = 0; i < fab.geo().tile_count(); ++i)
        occupancy += fab.tile_at(i).cache.valid_count();

    text_table t1("After the eviction storm");
    t1.set_header({"metric", "value"});
    t1.add_row({"fabric occupancy",
                std::to_string(occupancy) + " / " +
                    std::to_string(fab.tile_capacity_bytes() / 32)});
    t1.add_row({"replacement hops", std::to_string(c.get("replacement_hops"))});
    t1.add_row({"dirty blocks written back",
                std::to_string(c.get("dirty_exits_written_back"))});
    t1.add_row({"clean blocks dropped at the exits",
                std::to_string(c.get("clean_exits_dropped"))});
    t1.print();

    std::printf("Phase 2: read the most recent quarter back "
                "(the fabric holds the hottest window)\n");
    std::uint64_t asked = 0;
    for (std::uint64_t i = blocks - blocks / 4; i < blocks; ++i) {
        mem::mem_request read;
        read.id = ids.next();
        read.addr = 0x100000 + i * 32;
        read.kind = mem::access_kind::read;
        read.created_at = engine.now();
        while (!fab.can_accept(read)) {
            engine.run(1);
            read.created_at = engine.now();
        }
        fab.accept(read);
        ++asked;
        engine.run(3);
    }
    engine.run(2000);

    std::uint64_t fabric_hits = 0, next_level = 0;
    for (const auto& [id, r] : client.responses) {
        if (r.served_by == mem::service_level::lnuca_tile)
            ++fabric_hits;
        else
            ++next_level;
    }

    text_table t2("Reuse results");
    t2.set_header({"metric", "value"});
    t2.add_row({"reads issued", std::to_string(asked)});
    t2.add_row({"served by the fabric", std::to_string(fabric_hits)});
    t2.add_row({"served by the next level", std::to_string(next_level)});
    for (unsigned level = 2; level <= config.levels; ++level)
        t2.add_row({"hits in Le" + std::to_string(level),
                    std::to_string(fab.read_hits_in_level(level))});
    t2.add_row({"avg/min transport latency",
                text_table::num(safe_ratio(double(fab.transport_actual_cycles()),
                                           double(fab.transport_min_cycles()),
                                           1.0),
                                3)});
    t2.print();
    return 0;
}
