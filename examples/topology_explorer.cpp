// Topology explorer: renders the three L-NUCA networks of Fig. 2 as ASCII
// floorplans and prints per-tile link/latency detail for any level count.
//
//   ./examples/topology_explorer [--levels 3]
#include "src/lnuca.h"

#include <cstdio>

using namespace lnuca;
using fabric::geometry;
using fabric::tile_index;

namespace {

void draw_floorplan(const geometry& geo)
{
    const int d = int(geo.rings());
    std::printf("Floorplan (numbers = Fig. 2(c) tile latency; R = r-tile):\n");
    for (int y = d; y >= 0; --y) {
        for (int x = -d; x <= d; ++x) {
            if (x == 0 && y == 0)
                std::printf("  R ");
            else if (geo.contains({x, y}))
                std::printf("%3u ", geo.latency_of({x, y}));
            else
                std::printf("    ");
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void draw_levels(const geometry& geo)
{
    const int d = int(geo.rings());
    std::printf("Levels (Le2 surrounds the r-tile; each ring adds 4d+1 tiles):\n");
    for (int y = d; y >= 0; --y) {
        for (int x = -d; x <= d; ++x) {
            if (x == 0 && y == 0)
                std::printf("  R ");
            else if (geo.contains({x, y}))
                std::printf("%3u ", geo.level_of({x, y}));
            else
                std::printf("    ");
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int main(int argc, char** argv)
{
    const cli_args args(argc, argv);
    const unsigned levels = unsigned(args.get_u64("levels", 3));
    const geometry geo(levels);

    std::printf("L-NUCA with %u levels: %u tiles (%s of tile storage)\n\n",
                levels, geo.tile_count(),
                format_size(geo.tile_count() * 8_KiB).c_str());

    draw_levels(geo);
    draw_floorplan(geo);

    text_table links("Network links (all unidirectional)");
    links.set_header({"network", "links", "max distance", "purpose"});
    links.add_row({"Search (broadcast tree)",
                   std::to_string(geo.search_link_count()),
                   std::to_string(geo.search_max_distance()),
                   "miss propagation, 1 level/cycle"});
    links.add_row({"Transport (to-root mesh)",
                   std::to_string(geo.transport_link_count()),
                   std::to_string(geo.rings() * 2),
                   "hit blocks to the r-tile"});
    links.add_row({"Replacement (latency DAG)",
                   std::to_string(geo.replacement_link_count()),
                   std::to_string(geo.replacement_exit_distance()),
                   "victim domino, temporal ordering"});
    links.add_row({"NUCA-style 2D mesh (for comparison)",
                   std::to_string(geo.mesh_equivalent_link_count()),
                   std::to_string(geo.mesh_equivalent_max_distance()),
                   "what the paper replaces"});
    links.print();

    // Per-tile detail for the most-connected tile (the paper's Fig. 3
    // example is the upper-left corner tile of Le2).
    const tile_index corner = geo.index_of({-1, 1});
    text_table detail("Example tile (-1,1): the paper's max-degree case");
    detail.set_header({"attribute", "value"});
    detail.add_row({"level", std::to_string(geo.level_of({-1, 1}))});
    detail.add_row({"latency", std::to_string(geo.latency_of({-1, 1}))});
    detail.add_row({"search children",
                    std::to_string(geo.search_children(corner).size())});
    detail.add_row({"transport out-links",
                    std::to_string(geo.transport_outputs(corner).size())});
    detail.add_row({"transport in-links",
                    std::to_string(geo.transport_inputs(corner).size())});
    detail.add_row({"replacement out-links",
                    std::to_string(geo.replacement_outputs(corner).size())});
    detail.add_row({"replacement in-links",
                    std::to_string(geo.replacement_inputs(corner).size())});
    detail.print();
    return 0;
}
